"""The AutoHet pipeline: RL search over heterogeneous crossbar configs.

This is the system of Fig. 6: the DDPG agent proposes a crossbar type per
layer (decision stage, steps 1-4), the heterogeneous accelerator simulator
evaluates the full strategy (steps 5-7), and the experience pool feeds the
learning stage (steps 8-12).  Decision and learning alternate offline for
a fixed number of rounds (300 for the paper's VGG16 run, §4.5); the best
strategy seen becomes the final configuration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from ..arch.config import CrossbarShape, DEFAULT_CANDIDATES
from ..models.graph import Network
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger
from ..obs.trace import Tracer
from ..sim.cache import CacheStats
from ..sim.metrics import SystemMetrics
from ..sim.simulator import CapacityError, Simulator, Strategy
from .rl.ddpg import DDPGAgent, DDPGConfig
from .rl.environment import CrossbarSearchEnv, RewardFn, reward_rue

#: Progress logging for verbose searches, through the one obs bridge
#: (lint rules LNT001/LNT007); the CLI attaches the stdout handler.
_LOG = get_logger("search")


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one AutoHet search."""

    network_name: str
    best_strategy: Strategy
    best_metrics: SystemMetrics
    rounds: int
    reward_history: tuple[float, ...]         #: episode rewards, in order
    best_reward_history: tuple[float, ...]    #: running best per episode
    decision_seconds: float                   #: time in the RL agent
    simulator_seconds: float                  #: time waiting for feedback
    learning_seconds: float                   #: time in gradient updates
    #: homogeneous warm-up episodes before the RL rounds; the histories
    #: hold ``rounds + seed_episodes`` entries.
    seed_episodes: int = 0
    #: episodes whose strategy overflowed the bank (penalty reward)
    infeasible_episodes: int = 0
    #: evaluation-cache counters at search end (``None`` when disabled)
    cache_stats: CacheStats | None = None

    @property
    def total_seconds(self) -> float:
        return self.decision_seconds + self.simulator_seconds + self.learning_seconds

    @property
    def simulator_fraction(self) -> float:
        """Share of search time spent on simulator feedback (§4.5: ~97%)."""
        total = self.total_seconds
        return self.simulator_seconds / total if total else 0.0

    def summary(self) -> str:
        strat = ", ".join(f"L{i + 1}:{s}" for i, s in enumerate(self.best_strategy))
        return (
            f"AutoHet[{self.network_name}] {self.rounds} rounds, "
            f"best RUE={self.best_metrics.rue:.3e} "
            f"(U={self.best_metrics.utilization_percent:.1f}%, "
            f"E={self.best_metrics.energy_nj:.3e} nJ)\n  strategy: {strat}"
        )


class AutoHet:
    """Automated heterogeneous crossbar configuration search."""

    def __init__(
        self,
        network: Network,
        candidates: Sequence[CrossbarShape] = DEFAULT_CANDIDATES,
        simulator: Simulator | None = None,
        *,
        tile_shared: bool = True,
        reward_fn: RewardFn = reward_rue,
        agent_config: DDPGConfig | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self.tracer = tracer
        self.env = CrossbarSearchEnv(
            network,
            candidates,
            self.simulator,
            tile_shared=tile_shared,
            reward_fn=reward_fn,
            tracer=tracer,
        )
        cfg = agent_config if agent_config is not None else DDPGConfig(seed=seed)
        # A TD3Config transparently selects the twin-critic agent.
        from .rl.td3 import TD3Agent, TD3Config

        agent_cls = TD3Agent if isinstance(cfg, TD3Config) else DDPGAgent
        self.agent = agent_cls(cfg, tracer=tracer)
        self.network = network

    # ------------------------------------------------------------------
    def search(
        self,
        rounds: int = 300,
        *,
        verbose: bool = False,
        seed_homogeneous: bool = True,
    ) -> SearchResult:
        """Run the alternating decision/learning loop (Fig. 6).

        When ``seed_homogeneous`` is set (default), the first ``|C|``
        episodes probe the uniform strategies — one per crossbar
        candidate.  Those strategies are points of the search space the
        agent would eventually sample anyway; probing them up front
        anchors the critic's value estimate for every action bin and
        guarantees the search never returns worse than the best
        homogeneous configuration.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        env, agent = self.env, self.agent
        tracer = (
            self.tracer
            if self.tracer is not None
            else self.simulator.effective_tracer
        )
        best_reward = float("-inf")
        best: tuple[Strategy, SystemMetrics] | None = None
        rewards: list[float] = []
        best_curve: list[float] = []
        t_decide = t_sim = t_learn = 0.0
        seed_episodes = 0
        infeasible_before = env.infeasible_episodes

        if seed_homogeneous:
            for idx in range(env.num_actions):
                t1 = time.perf_counter()
                probe = env.evaluate_indices([idx] * env.num_layers)
                t2 = time.perf_counter()
                agent.observe_episode(probe.transitions)
                t3 = time.perf_counter()
                t_sim += t2 - t1
                t_learn += t3 - t2
                seed_episodes += 1
                rewards.append(probe.reward)
                if probe.feasible and probe.reward > best_reward:
                    best_reward = probe.reward
                    best = (probe.strategy, probe.metrics)
                best_curve.append(best_reward)

        for episode in range(rounds):
            with tracer.span(obs_metrics.SPAN_EPISODE, episode=episode):
                # ---- decision stage (steps 1-4): pick an action per layer.
                t0 = time.perf_counter()
                agent.begin_episode()
                state = env.reset()
                indices: list[int] = []
                done = False
                while not done:
                    a = agent.act(state, explore=True)
                    idx = env.continuous_to_index(a)
                    indices.append(idx)
                    state, done = env.step(idx)
                t1 = time.perf_counter()
                # ---- hardware feedback (steps 5-7): simulator evaluation.
                result = env.finish()
                t2 = time.perf_counter()
                # ---- learning stage (steps 8-12): pool + pair-network
                # update.
                agent.observe_episode(result.transitions)
                agent.learn()
                t3 = time.perf_counter()

            t_decide += t1 - t0
            t_sim += t2 - t1
            t_learn += t3 - t2
            rewards.append(result.reward)
            if result.feasible and result.reward > best_reward:
                best_reward = result.reward
                best = (result.strategy, result.metrics)
            best_curve.append(best_reward)
            if verbose and (episode + 1) % max(rounds // 10, 1) == 0:
                _LOG.info(
                    "  round %4d/%d: reward=%.3e best=%.3e sigma=%.3f",
                    episode + 1,
                    rounds,
                    result.reward,
                    best_reward,
                    agent.noise.sigma,
                )

        if best is None:
            raise CapacityError(
                f"no feasible strategy in {len(rewards)} episodes on "
                f"{self.network.name}: every strategy overflowed the bank "
                f"({self.simulator.config.tiles_per_bank} tiles)"
            )
        if tracer.enabled:
            tracer.event(
                obs_metrics.EVENT_SEARCH_RESULT,
                search="autohet",
                network=self.network.name,
                rounds=rounds,
                best_reward=best_reward,
                seed_episodes=seed_episodes,
                infeasible=env.infeasible_episodes - infeasible_before,
            )
            stats = self.simulator.cache_stats()
            if stats is not None:
                obs_metrics.emit_cache_stats(tracer, stats, context="autohet")
        return SearchResult(
            network_name=self.network.name,
            best_strategy=best[0],
            best_metrics=best[1],
            rounds=rounds,
            reward_history=tuple(rewards),
            best_reward_history=tuple(best_curve),
            decision_seconds=t_decide,
            simulator_seconds=t_sim,
            learning_seconds=t_learn,
            seed_episodes=seed_episodes,
            infeasible_episodes=env.infeasible_episodes - infeasible_before,
            cache_stats=self.simulator.cache_stats(),
        )

    # ------------------------------------------------------------------
    def exploit(self) -> tuple[Strategy, SystemMetrics]:
        """Deterministic rollout of the current policy (no exploration)."""
        result = self.env.rollout(
            lambda s: self.env.continuous_to_index(self.agent.act(s, explore=False))
        )
        return result.strategy, result.metrics


def autohet_search(
    network: Network,
    candidates: Sequence[CrossbarShape] = DEFAULT_CANDIDATES,
    *,
    rounds: int = 300,
    tile_shared: bool = True,
    simulator: Simulator | None = None,
    seed: int = 0,
    verbose: bool = False,
    tracer: Tracer | None = None,
) -> SearchResult:
    """One-call convenience wrapper: build an :class:`AutoHet` and search."""
    engine = AutoHet(
        network,
        candidates,
        simulator,
        tile_shared=tile_shared,
        seed=seed,
        tracer=tracer,
    )
    return engine.search(rounds, verbose=verbose)


def autohet_multi_seed(
    network: Network,
    candidates: Sequence[CrossbarShape] = DEFAULT_CANDIDATES,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    rounds: int = 300,
    tile_shared: bool = True,
    simulator: Simulator | None = None,
    max_workers: int | None = None,
    verbose: bool = False,
    tracer: Tracer | None = None,
) -> tuple[SearchResult, tuple[SearchResult, ...]]:
    """Run :func:`autohet_search` under several RL seeds; keep the best.

    All runs share one simulator — and therefore one evaluation cache, so
    seeds re-pay each other's homogeneous probes and revisited strategies.
    With ``max_workers`` > 1 the runs fan out over a thread pool (the
    cache is thread-safe; the numpy-based agents release no work to the
    GIL, so speed-ups are modest — the cache sharing is the main win).

    Returns ``(best, per_seed_results)``; ``per_seed_results`` is ordered
    like ``seeds``.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    sim = simulator if simulator is not None else Simulator()
    # Every seed's environment reset probes the |C| uniform strategies
    # (``detailed=False``, matching the environment's keying); scoring
    # them once as a kernel batch pre-warms the shared cache so each run
    # — and each worker thread — starts on hits instead of racing to
    # evaluate the same probes.
    if sim.cache is not None:
        sim.evaluate_many(
            network,
            [
                tuple(shape for _ in range(network.num_layers))
                for shape in candidates
            ],
            tile_shared=tile_shared,
            detailed=False,
        )

    def run(seed: int) -> SearchResult:
        return autohet_search(
            network,
            candidates,
            rounds=rounds,
            tile_shared=tile_shared,
            simulator=sim,
            seed=seed,
            verbose=verbose,
            tracer=tracer,
        )

    if max_workers is not None and max_workers > 1 and len(seeds) > 1:
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers
        ) as pool:
            results = tuple(pool.map(run, seeds))
    else:
        results = tuple(run(seed) for seed in seeds)
    best = max(results, key=lambda r: r.best_metrics.reward)
    return best, results
