"""System metrics: utilization, energy, area, latency, and RUE (§2.2).

The paper's headline metric is **RUE** — the Ratio of Utilization and
Energy, ``RUE = U / E`` — introduced in §2.2 to score utilization and
energy jointly.  Units follow the paper's figures: ``U`` is the crossbar
utilization in percent (Fig. 9b's axis runs 0..100) and ``E`` is the
inference energy in nanojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component dynamic + static energy of one inference pass (nJ)."""

    adc: float = 0.0
    dac: float = 0.0
    crossbar: float = 0.0
    shift_add: float = 0.0
    adder_tree: float = 0.0
    buffer: float = 0.0
    bus: float = 0.0
    pooling: float = 0.0
    leakage: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.adc
            + self.dac
            + self.crossbar
            + self.shift_add
            + self.adder_tree
            + self.buffer
            + self.bus
            + self.pooling
            + self.leakage
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            adc=self.adc + other.adc,
            dac=self.dac + other.dac,
            crossbar=self.crossbar + other.crossbar,
            shift_add=self.shift_add + other.shift_add,
            adder_tree=self.adder_tree + other.adder_tree,
            buffer=self.buffer + other.buffer,
            bus=self.bus + other.bus,
            pooling=self.pooling + other.pooling,
            leakage=self.leakage + other.leakage,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            **{k: getattr(self, k) * factor for k in self.__dataclass_fields__}
        )


@dataclass(frozen=True)
class LayerCost:
    """Per-layer simulation outputs."""

    layer_index: int
    shape_str: str
    mvm_ops: int
    num_crossbars: int
    adc_conversions: int      #: total ADC conversions over the full pass
    dac_conversions: int      #: total DAC conversions over the full pass
    energy: EnergyBreakdown   #: layer energy, nJ
    latency_ns: float         #: layer latency contribution, ns
    intra_utilization: float  #: Eq. 4 utilization of this layer's array


@dataclass(frozen=True)
class SystemMetrics:
    """Whole-system feedback for one (network, strategy) evaluation.

    This is the "direct hardware feedback" of Fig. 6 that drives the RL
    reward, and the record each benchmark prints.
    """

    network_name: str
    strategy: tuple[str, ...]          #: crossbar shape per layer, as strings
    utilization: float                 #: overall crossbar utilization, [0, 1]
    energy_nj: float                   #: inference energy, nJ
    latency_ns: float                  #: inference latency, ns
    area_um2: float                    #: accelerator area, um^2
    occupied_tiles: int
    occupied_crossbars: int            #: logical crossbars holding weights
    empty_crossbars: int               #: empty slots inside occupied tiles
    tile_shared: bool
    energy_breakdown: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    layer_costs: tuple[LayerCost, ...] = ()

    @property
    def utilization_percent(self) -> float:
        return self.utilization * 100.0

    @property
    def rue(self) -> float:
        """Ratio of Utilization (percent) to Energy (nJ) — the §2.2 metric."""
        return self.utilization_percent / self.energy_nj if self.energy_nj else 0.0

    @property
    def reward(self) -> float:
        """The RL reward ``R = u / e`` (Eq. 2).

        Uses the [0, 1] utilization fraction so that, as §3.2 notes, the
        energy magnitude dominates and the reward lands in [0, 1].
        """
        return self.utilization / self.energy_nj if self.energy_nj else 0.0

    def summary(self) -> str:
        return (
            f"{self.network_name}: U={self.utilization_percent:.1f}% "
            f"E={self.energy_nj:.3e} nJ  RUE={self.rue:.3e}  "
            f"A={self.area_um2:.3e} um^2  T={self.latency_ns:.3e} ns  "
            f"tiles={self.occupied_tiles}"
        )
