"""Fixture scalar cost path whose kernel module has drifted (PAR rules).

Mirrors the real tree's shape — the same class names and coverage-table
fields the live ``KERNEL_COVERAGE`` declares — with four deliberate
divergences spread across this module and ``kernels.py``:

* ``evaluate`` reads ``LayerSpec.flavor``, which no coverage entry maps
  to a kernel column (PAR001);
* ``kernels.NetworkArrays`` grows a ``scratch_buffer`` column nothing
  declares (PAR002);
* ``kernels.SHAPE_TABLE_FLOAT_ROWS`` and its ``_F_*`` index unpack
  disagree on the row count (PAR003);
* ``kernels.score_strategy_batch`` reworded the capacity message that
  must stay byte-identical to :meth:`Simulator._capacity_check` (PAR003).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class LayerSpec:
    index: int
    layer_type: str
    input_size: int
    stride: int
    padding: int
    kernel_size: int
    in_channels: int
    out_channels: int
    flavor: str


@dataclass(frozen=True)
class PoolSpec:
    window: int
    stride: int


@dataclass(frozen=True)
class Stage:
    layer: LayerSpec
    pool: PoolSpec


@dataclass(frozen=True)
class Network:
    name: str
    stages: tuple[Stage, ...]


@dataclass(frozen=True)
class CrossbarShape:
    rows: int
    cols: int
    _str: str


@dataclass(frozen=True)
class LayerMapping:
    layer: LayerSpec
    shape: CrossbarShape
    row_groups: int
    col_groups: int
    kernel_split: bool
    num_crossbars: int
    used_columns_total: int
    allocated_columns_total: int
    used_rows_total: int
    allocated_rows_total: int
    partial_sum_adds: int
    adder_tree_depth: int
    used_columns_per_crossbar_max: int


@dataclass
class Simulator:
    tiles_per_bank: int

    def _capacity_check(self, occupied_tiles: int) -> None:
        if occupied_tiles > self.tiles_per_bank:
            raise ValueError(
                f"strategy needs {occupied_tiles} tiles; one bank "
                f"holds {self.tiles_per_bank}"
            )

    def evaluate(self, network: Network, mapping: LayerMapping) -> float:
        total = 0.0
        for stage in network.stages:
            layer = stage.layer
            pool = stage.pool
            total += layer.index + layer.input_size + layer.stride
            total += layer.padding + layer.kernel_size
            total += layer.in_channels * layer.out_channels
            total += len(layer.layer_type) + len(layer.flavor)  # PAR001
            total += pool.window * pool.stride
        shape = mapping.shape
        total += shape.rows * shape.cols + len(shape._str)
        total += mapping.row_groups * mapping.col_groups
        total += mapping.layer.index
        self._capacity_check(int(total))
        return total + len(network.name)

    def try_evaluate(self, network: Network, mapping: LayerMapping) -> float:
        return self.evaluate(network, mapping)
