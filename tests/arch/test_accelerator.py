"""End-to-end tests of the physical accelerator object model."""

import numpy as np
import pytest

from repro.arch.accelerator import HeterogeneousAccelerator
from repro.arch.config import CrossbarShape, HardwareConfig
from repro.models import lenet, tiny_cnn
from repro.sim import Simulator
from repro.sim.functional import random_weights, unfold_weights
from repro.sim.quantization import quantize


def build(net, strategy, tile_shared=True, config=None):
    cfg = config or HardwareConfig()
    sim = Simulator(cfg)
    mappings = sim.map_network(net, strategy)
    allocation = sim.allocate(mappings, tile_shared=tile_shared)
    weights = random_weights(net, seed=11)
    wq = {
        l.index: quantize(
            unfold_weights(l, weights[l.index]), cfg.weight_bits, signed=True
        ).values
        for l in net.layers
    }
    return HeterogeneousAccelerator(allocation, wq, cfg), allocation, wq


class TestProgramming:
    def test_every_block_placed(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        acc, allocation, _ = build(lenet_net, strategy)
        for mapping in allocation.mappings:
            assert (
                len(acc.block_locations[mapping.layer.index])
                == mapping.num_crossbars
            )

    def test_physical_utilization_matches_analytic(self, lenet_net):
        strategy = (
            CrossbarShape(36, 32),
            CrossbarShape(72, 64),
            CrossbarShape(288, 256),
            CrossbarShape(72, 64),
            CrossbarShape(72, 64),
        )
        acc, allocation, _ = build(lenet_net, strategy)
        assert acc.utilization() == pytest.approx(allocation.utilization)

    def test_occupied_tiles_match(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        acc, allocation, _ = build(lenet_net, strategy)
        assert acc.occupied_tiles == allocation.occupied_tiles

    def test_rejects_wrong_weight_shape(self, lenet_net):
        cfg = HardwareConfig()
        sim = Simulator(cfg)
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        mappings = sim.map_network(lenet_net, strategy)
        allocation = sim.allocate(mappings, tile_shared=False)
        bad = {l.index: np.zeros((1, 1), dtype=int) for l in lenet_net.layers}
        with pytest.raises(ValueError, match="weight matrix"):
            HeterogeneousAccelerator(allocation, bad, cfg)


class TestLayerMVM:
    @pytest.mark.parametrize("tile_shared", [False, True])
    def test_exact_per_layer(self, lenet_net, tile_shared):
        strategy = (
            CrossbarShape(36, 32),
            CrossbarShape(72, 64),
            CrossbarShape(288, 256),
            CrossbarShape(72, 64),
            CrossbarShape(72, 64),
        )
        acc, _, wq = build(lenet_net, strategy, tile_shared=tile_shared)
        rng = np.random.default_rng(5)
        for layer in lenet_net.layers:
            x = rng.integers(0, 256, size=layer.in_channels * layer.kernel_elems)
            out = acc.layer_mvm(layer.index, x)
            assert np.array_equal(out, x @ wq[layer.index])

    def test_exact_with_kernel_split(self):
        """A 5x5 kernel on a 16-row crossbar forces the split path."""
        from repro.models import MNIST, Network
        from repro.models.layers import LayerSpec

        net = Network.build(
            "split-net", MNIST, [LayerSpec.conv(1, 6, 5, padding=2)]
        )
        strategy = (CrossbarShape(16, 16),)
        acc, _, wq = build(net, strategy)
        rng = np.random.default_rng(1)
        x = rng.integers(0, 256, size=25)
        assert np.array_equal(acc.layer_mvm(0, x), x @ wq[0])

    def test_rejects_wrong_input_shape(self, lenet_net):
        strategy = tuple(CrossbarShape(72, 64) for _ in lenet_net.layers)
        acc, _, _ = build(lenet_net, strategy)
        with pytest.raises(ValueError):
            acc.layer_mvm(0, np.zeros(3, dtype=int))

    def test_tiny_cnn_with_mixed_strategy(self, tiny_net):
        strategy = (
            CrossbarShape(32, 32),
            CrossbarShape(288, 256),
            CrossbarShape(576, 512),
            CrossbarShape(72, 64),
        )
        acc, _, wq = build(tiny_net, strategy)
        rng = np.random.default_rng(2)
        for layer in tiny_net.layers:
            x = rng.integers(0, 256, size=layer.in_channels * layer.kernel_elems)
            assert np.array_equal(acc.layer_mvm(layer.index, x), x @ wq[layer.index])
