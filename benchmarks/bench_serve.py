"""Serving-simulator throughput gate (docs/serving.md "Performance").

Runs a sustainable two-tenant scenario — lenet + tinycnn at rates a
single weight copy can carry, with a mid-run traffic shift that forces
one drift re-allocation — sized to ~20k simulated requests, and pins
the engine's wall-clock budget: the event loop must push **at least
10,000 simulated requests per wall second** with full event logging on
(logging is part of the simulator's contract, not overhead to shed).

The run must also stay *correct* while fast: the report validates, the
re-pack fires, and every arrival is conserved.
"""

import time

from conftest import run_once

from repro.serve import (
    ArrivalPhase,
    ReallocConfig,
    Scenario,
    TenantSpec,
    build_report,
    simulate,
    validate_report,
)

#: wall-clock gate: simulated requests handled per second of real time
MIN_REQUESTS_PER_WALL_S = 10_000


def serve_scenario() -> Scenario:
    """~20k requests over 9 simulated seconds, one traffic inversion."""
    return Scenario(
        name="bench-serve",
        duration_ns=9e9,
        seed=7,
        max_batch=8,
        queue_cap=0,
        realloc=ReallocConfig(
            enabled=True, threshold=0.15, window=128, check_every=32,
            stall_ns=5e4, cooldown_ns=5e8, headroom=2.5,
        ),
        tenants=(
            TenantSpec(
                name="lenet", model="lenet", shape="64x64",
                rate_rps=1100.0,
                phases=(ArrivalPhase(at_ns=4.5e9, rate_rps=2400.0),),
                slo_ns=5e6,
            ),
            TenantSpec(
                name="tinycnn", model="tinycnn", shape="64x64",
                rate_rps=800.0,
                phases=(ArrivalPhase(at_ns=4.5e9, rate_rps=400.0),),
                slo_ns=8e6,
            ),
        ),
    )


def serve_profile() -> dict:
    scenario = serve_scenario()
    start = time.perf_counter()
    result = simulate(scenario)
    wall_s = time.perf_counter() - start
    report = build_report(result)
    return {
        "result": result,
        "report": report,
        "wall_s": wall_s,
        "requests_per_wall_s": result.total_arrivals / wall_s,
        "events_per_wall_s": result.events_processed / wall_s,
    }


def test_serve_throughput(benchmark):
    profile = run_once(benchmark, serve_profile)
    result = profile["result"]
    benchmark.extra_info["arrivals"] = result.total_arrivals
    benchmark.extra_info["completed"] = result.total_completed
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["realloc_events"] = len(result.realloc_events)
    benchmark.extra_info["requests_per_wall_s"] = round(
        profile["requests_per_wall_s"]
    )
    benchmark.extra_info["events_per_wall_s"] = round(
        profile["events_per_wall_s"]
    )

    # Scale sanity: the scenario is big enough to mean something.
    assert result.total_arrivals >= 15_000, (
        f"scenario shrank to {result.total_arrivals} requests"
    )
    # Correctness rides along with the throughput gate.
    assert validate_report(profile["report"]) == []
    assert len(result.realloc_events) >= 1, "drift re-pack never fired"
    assert result.total_rejected == 0, "sustainable scenario shed load"
    # The gate: simulated request throughput per wall second.
    assert profile["requests_per_wall_s"] >= MIN_REQUESTS_PER_WALL_S, (
        f"{profile['requests_per_wall_s']:.0f} req/s of wall time "
        f"(gate {MIN_REQUESTS_PER_WALL_S})"
    )
