"""NumPy batch kernels for the analytic cost model — the vectorized core.

The scalar cost model (``energy.py`` / ``latency.py`` / ``area.py`` and
the Eq. 4 mapping math in ``arch/mapping.py``) walks Python objects layer
by layer.  After PR 2's memoisation that walk is still the hot path of a
cold :meth:`~repro.sim.simulator.Simulator.evaluate` — exactly the ~97%
simulator-feedback wall clock the paper measures in §4.5.  This module
re-expresses the whole model as array kernels:

* a **struct-of-arrays** :class:`NetworkArrays` record, extracted once per
  :class:`~repro.models.graph.Network` and memoised — per-layer channel
  counts, kernel footprints, MVM counts, weight cells, and the pooled
  element counts behind every pooling stage;
* a :class:`MappingBatch` carrying the per-layer crossbar geometry and the
  Eq. 4 / Fig. 7 group counts for one strategy (arrays of shape ``(L,)``)
  or a whole candidate batch (shape ``(S, L)``), computed with integer
  array ceils — no :class:`~repro.arch.mapping.LayerMapping` objects;
* energy / latency / area / utilization kernels over those arrays, plus a
  strategy-batched scorer (:func:`score_strategy_batch`) that rolls an
  ``(S, L)`` matrix of candidate shapes into ``S`` full
  :class:`~repro.sim.metrics.SystemMetrics` in one shot.

**Exactness contract.**  Kernel results are *bit-identical* to the scalar
reference, not merely close (``tests/sim/test_vectorized_parity.py`` and
the PR 4 golden/trace batteries enforce it).  The techniques:

* every float expression mirrors the scalar source's operator order
  (left-associative, same literals), so each elementwise op performs the
  identical IEEE-754 double operation;
* running totals use ``np.cumsum(...)[-1]`` — ``ufunc.accumulate`` is a
  strict sequential left fold, unlike ``np.sum``'s pairwise reduction, so
  it replays the scalar ``total += x`` loop addition for addition;
* the area roll-up repeats each layer's tile area ``count`` times
  (``np.repeat`` + ``cumsum``), matching ``area_from_tile_runs``'s
  one-addition-per-tile fold;
* integer quantities stay in ``int64`` (exact far beyond any realistic
  magnitude) and convert to float at the same point the scalar code does;
  ``ceil(a / b)`` on integers becomes ``-(-a // b)``;
* ``ceil(log2(row_groups))`` becomes the exact integer equivalent
  ``(row_groups - 1).bit_length()`` via ``np.frexp``'s exponent.

See ``docs/performance.md`` ("Vectorized kernels") for the design note.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from ..arch.config import CrossbarShape, HardwareConfig
from ..core.allocation.summary import AllocationSummary, summarize_counts
from ..models.graph import Network
from ..obs.trace import NULL_TRACER, Tracer
from .metrics import EnergyBreakdown, LayerCost, SystemMetrics
from .units_constants import NW_NS_TO_NJ

__all__ = [
    "NetworkArrays",
    "MappingBatch",
    "InfeasibleScore",
    "KERNEL_COVERAGE",
    "KERNEL_DERIVED_COLUMNS",
    "SHAPE_TABLE_FLOAT_ROWS",
    "SHAPE_TABLE_INT_ROWS",
    "network_arrays",
    "extract_mapping_batch",
    "extract_strategy_batch",
    "batch_energy_terms",
    "batch_layer_latency_ns",
    "batch_tile_area_um2",
    "batch_utilization",
    "pooling_totals",
    "left_fold",
    "area_from_layer_runs",
    "ShapeTable",
    "shape_table",
    "strategy_view",
    "metrics_from_view",
    "score_strategy_batch",
]


def left_fold(values: np.ndarray) -> np.ndarray:
    """Strict left-to-right sum along the last axis.

    ``np.add.accumulate`` applies the ufunc sequentially, so taking the
    last cumulative element replays a scalar ``total += x`` loop bit for
    bit — ``np.sum``'s pairwise reduction does not.  An empty last axis
    folds to ``0.0`` like an empty loop.
    """
    if values.shape[-1] == 0:
        return np.zeros(values.shape[:-1], dtype=np.float64)
    return np.cumsum(values, axis=-1)[..., -1]


def _ceil_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact integer ``ceil(a / b)`` for positive operands."""
    return -(-a // b)


# ----------------------------------------------------------------------
# Kernel parity coverage contract (PAR rules)
# ----------------------------------------------------------------------
#
# The scalar cost path and these kernels must agree bit-for-bit, which
# first requires them to agree on *inputs*: every attribute the scalar
# path reads on the objects this module restructures into arrays must be
# folded into some kernel column.  These tables declare that mapping —
# the exact analogue of ``repro.sim.cache.FINGERPRINTED_FIELDS`` for the
# vectorized fork — and ``repro.analysis.kernel_parity`` cross-checks
# them against the dataflow read-set of ``Simulator.evaluate`` (PAR001)
# and against the columns this module actually defines (PAR002).  See
# docs/static_analysis.md ("The kernel coverage-table contract").

#: Scalar read -> kernel column.  Outer key: a class the kernels
#: restructure into arrays; inner key: a field of it the scalar cost
#: path reads; value: the kernel columns that carry it.  Two sentinel
#: targets exist besides ``"Class.column"``: ``"builder"`` (the value is
#: passed through by the batch scorer itself, e.g. ``Network.name`` into
#: ``SystemMetrics``) and ``"shared"`` (both paths call the same shared
#: code on the same object, e.g. ``CrossbarShape.__str__``).
KERNEL_COVERAGE: dict[str, dict[str, tuple[str, ...]]] = {
    "LayerSpec": {
        "index": ("NetworkArrays.layer_indices",),
        "layer_type": ("NetworkArrays.mvm_ops",),
        "input_size": ("NetworkArrays.mvm_ops",),
        "stride": ("NetworkArrays.mvm_ops",),
        "padding": ("NetworkArrays.mvm_ops",),
        "kernel_size": ("NetworkArrays.kernel_elems",),
        "in_channels": ("NetworkArrays.in_channels",),
        "out_channels": ("NetworkArrays.out_channels",),
    },
    "PoolSpec": {
        "window": ("NetworkArrays.pooled_elems",),
        "stride": ("NetworkArrays.pooled_elems",),
    },
    "Network": {
        "stages": ("NetworkArrays.num_layers",),
        "name": ("builder",),
    },
    "Stage": {
        "layer": ("NetworkArrays.num_layers",),
        "pool": ("NetworkArrays.pooled_elems",),
    },
    "CrossbarShape": {
        "rows": ("MappingBatch.rows",),
        "cols": ("MappingBatch.cols",),
        "_str": ("shared",),
    },
    "LayerMapping": {
        "layer": ("MappingBatch.net",),
        "shape": ("MappingBatch.rows", "MappingBatch.cols"),
        "row_groups": ("MappingBatch.row_groups",),
        "col_groups": ("MappingBatch.col_groups",),
    },
}

#: Kernel columns that are *derived* from covered columns rather than
#: read directly from scalar objects (products, group counts, ShapeTable
#: rows — each the output of a scalar cost function).  Every column of
#: :class:`NetworkArrays` / :class:`MappingBatch` and every
#: :class:`ShapeTable` row must appear either as a KERNEL_COVERAGE
#: target or here; anything else is a dead column (PAR002).  Derived
#: ``MappingBatch`` columns must mirror a same-named
#: :class:`~repro.arch.mapping.LayerMapping` member (PAR003).
KERNEL_DERIVED_COLUMNS: dict[str, tuple[str, ...]] = {
    "NetworkArrays": ("weight_counts", "in_bytes", "weight_cells_total"),
    "MappingBatch": (
        "kernel_split",
        "num_crossbars",
        "used_columns_total",
        "allocated_columns_total",
        "used_rows_total",
        "allocated_rows_total",
        "partial_sum_adds",
        "adder_tree_depth",
        "used_columns_per_crossbar_max",
    ),
    "ShapeTable": (
        "adc",
        "dac",
        "crossbar",
        "shift_add",
        "adder_tree",
        "buffer",
        "bus",
        "layer_latency_ns",
        "tile_area_um2",
        "utilization",
        "num_crossbars",
        "adc_conversions",
        "dac_conversions",
    ),
}


# ----------------------------------------------------------------------
# Struct-of-arrays extraction
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class NetworkArrays:
    """Per-layer constants of one network as ``(L,)`` int64 arrays.

    Everything here is a pure function of the fingerprinted
    :class:`~repro.models.layers.LayerSpec` fields (see
    ``repro.sim.cache.FINGERPRINTED_FIELDS``), so one record serves every
    strategy evaluated against the network.  Arrays are frozen
    (``writeable=False``) — the record is shared across evaluations.
    """

    num_layers: int
    layer_indices: np.ndarray   #: ``layer.index`` per layer
    mvm_ops: np.ndarray         #: MVMs per inference pass
    in_channels: np.ndarray
    out_channels: np.ndarray
    kernel_elems: np.ndarray    #: ``k^2`` (1 for FC)
    weight_counts: np.ndarray   #: weight cells per layer
    in_bytes: np.ndarray        #: ``in_channels * kernel_elems``
    weight_cells_total: int     #: sum of ``weight_counts``
    pooled_elems: np.ndarray    #: pooled output elements per pooling stage,
    #: in layer order (empty when the network has no pooling)


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def network_arrays(network: Network) -> NetworkArrays:
    """Extract the per-layer constant arrays of one network."""
    layers = network.layers

    def as_i64(values: list[int]) -> np.ndarray:
        return _frozen(np.array(values, dtype=np.int64))

    in_channels = as_i64([layer.in_channels for layer in layers])
    kernel_elems = as_i64([layer.kernel_elems for layer in layers])
    weight_counts = as_i64([layer.weight_count for layer in layers])
    pooled = []
    for i, layer in enumerate(layers):
        pool = network.pool_after_or_none(i)
        if pool is not None:
            pooled.append(
                pool.output_size(layer.output_size) ** 2 * layer.out_channels
            )
    return NetworkArrays(
        num_layers=len(layers),
        layer_indices=as_i64([layer.index for layer in layers]),
        mvm_ops=as_i64([layer.mvm_ops for layer in layers]),
        in_channels=in_channels,
        out_channels=as_i64([layer.out_channels for layer in layers]),
        kernel_elems=kernel_elems,
        weight_counts=weight_counts,
        in_bytes=_frozen(in_channels * kernel_elems),
        weight_cells_total=int(weight_counts.sum()),
        pooled_elems=as_i64(pooled),
    )


def cached_network_arrays(network: Network) -> NetworkArrays:
    """Per-network memo of :func:`network_arrays`.

    Stored on the (frozen, immutable) ``Network`` instance itself rather
    than in an ``lru_cache``: the dataclass hash of a network recursively
    hashes every layer spec (~10µs for VGG16), which would dominate the
    per-evaluate budget.  ``object.__setattr__`` bypasses the frozen
    guard; the record is a pure function of the instance, so the stash
    can never go stale.
    """
    record = network.__dict__.get("_kernel_arrays")
    if record is None:
        record = network_arrays(network)
        object.__setattr__(network, "_kernel_arrays", record)
    return record


@dataclass(frozen=True, eq=False)
class _NetworkConstants:
    """Geometry-independent cost terms of one (network, config) pair.

    Every field is a deterministic function of :class:`NetworkArrays` and
    the config, computed with exactly the scalar reference's operations —
    caching them changes nothing bit-wise, it only stops the per-evaluate
    recomputation of terms no strategy can affect.
    """

    phase_factor: np.ndarray    #: ``mvm_ops * input_cycles * xbars_per_group``
    crossbar_nj: np.ndarray     #: full crossbar-read energy term
    buffer_nj: np.ndarray       #: full buffer energy term
    movement_buffer_ns: np.ndarray  #: buffer half of the movement latency
    pool_energy_nj: float
    pool_latency_ns: float


def network_constants(
    net: NetworkArrays, config: HardwareConfig
) -> _NetworkConstants:
    """Memoised per-``(net, config)`` constants (dict on the net record)."""
    cache: dict[HardwareConfig, _NetworkConstants]
    cache = net.__dict__.get("_constants")  # type: ignore[assignment]
    if cache is None:
        cache = {}
        object.__setattr__(net, "_constants", cache)
    record = cache.get(config)
    if record is None:
        phase_factor = (
            net.mvm_ops * config.input_cycles * config.xbars_per_group
        )
        out_bytes = net.out_channels
        pooled = net.pooled_elems
        record = _NetworkConstants(
            phase_factor=_frozen(phase_factor),
            crossbar_nj=_frozen(
                phase_factor * net.weight_counts * config.energy_cell_read_nj
            ),
            buffer_nj=_frozen(
                net.mvm_ops
                * (net.in_bytes + out_bytes)
                * config.energy_buffer_nj_per_byte
            ),
            movement_buffer_ns=_frozen(
                (net.in_bytes + out_bytes) * config.latency_buffer_ns_per_byte
            ),
            pool_energy_nj=float(left_fold(pooled * config.energy_pool_nj)),
            pool_latency_ns=float(left_fold(pooled * config.latency_pool_ns)),
        )
        if len(cache) >= 64:  # bound sweep workloads with many configs
            cache.clear()
        cache[config] = record
    return record


@dataclass(frozen=True, eq=False)
class MappingBatch:
    """Eq. 4 / Fig. 7 mapping outcomes for one or more strategies.

    Geometry arrays broadcast against :attr:`net`'s ``(L,)`` constants:
    shape ``(L,)`` for a single strategy, ``(S, L)`` for a candidate
    batch.  Derived activity counts mirror the
    :class:`~repro.arch.mapping.LayerMapping` properties exactly.
    """

    net: NetworkArrays
    rows: np.ndarray          #: crossbar rows per layer
    cols: np.ndarray          #: crossbar cols per layer
    row_groups: np.ndarray    #: Fig. 7 vertical tiling
    col_groups: np.ndarray
    kernel_split: np.ndarray  #: bool; the k^2 > rows fallback engaged

    @cached_property
    def num_crossbars(self) -> np.ndarray:
        return self.row_groups * self.col_groups

    @cached_property
    def used_columns_total(self) -> np.ndarray:
        return self.row_groups * self.net.out_channels

    @cached_property
    def allocated_columns_total(self) -> np.ndarray:
        return self.num_crossbars * self.cols

    @cached_property
    def used_rows_total(self) -> np.ndarray:
        return self.col_groups * self.net.in_channels * self.net.kernel_elems

    @cached_property
    def allocated_rows_total(self) -> np.ndarray:
        return self.num_crossbars * self.rows

    @cached_property
    def partial_sum_adds(self) -> np.ndarray:
        return (self.row_groups - 1) * self.net.out_channels

    @cached_property
    def adder_tree_depth(self) -> np.ndarray:
        """``ceil(log2(row_groups))`` as exact integer math.

        ``(row_groups - 1).bit_length()`` equals ``ceil(log2(rg))`` for
        ``rg > 1``; ``np.frexp``'s exponent of ``float64(rg - 1)`` *is*
        that bit length (exact below 2^53).
        """
        return np.frexp((self.row_groups - 1).astype(np.float64))[1]

    @cached_property
    def used_columns_per_crossbar_max(self) -> np.ndarray:
        return np.minimum(self.net.out_channels, self.cols)


def _group_counts(
    net: NetworkArrays, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``arch.mapping._map_shapes`` (Eq. 4 + kernel-split)."""
    slices_per_xbar = rows // net.kernel_elems
    kernel_split = slices_per_xbar < 1
    plain = _ceil_div(net.in_channels, np.where(kernel_split, 1, slices_per_xbar))
    dense = _ceil_div(net.in_channels * net.kernel_elems, rows)
    row_groups = np.where(kernel_split, dense, plain)
    col_groups = _ceil_div(net.out_channels, cols)
    return row_groups, col_groups, kernel_split


def extract_mapping_batch(
    network: Network, strategy: Sequence[CrossbarShape]
) -> MappingBatch:
    """SoA mapping of one strategy — ``(L,)`` arrays, no LayerMapping."""
    net = cached_network_arrays(network)
    if len(strategy) != net.num_layers:
        raise ValueError(
            f"strategy length {len(strategy)} != layer count {net.num_layers}"
        )
    rows = np.fromiter(
        (s.rows for s in strategy), dtype=np.int64, count=net.num_layers
    )
    cols = np.fromiter(
        (s.cols for s in strategy), dtype=np.int64, count=net.num_layers
    )
    row_groups, col_groups, kernel_split = _group_counts(net, rows, cols)
    return MappingBatch(
        net=net,
        rows=rows,
        cols=cols,
        row_groups=row_groups,
        col_groups=col_groups,
        kernel_split=kernel_split,
    )


def extract_strategy_batch(
    network: Network, strategies: Sequence[Sequence[CrossbarShape]]
) -> MappingBatch:
    """SoA mapping of a candidate batch — ``(S, L)`` arrays."""
    net = cached_network_arrays(network)
    for strategy in strategies:
        if len(strategy) != net.num_layers:
            raise ValueError(
                f"strategy length {len(strategy)} != layer count "
                f"{net.num_layers}"
            )
    rows = np.array(
        [[s.rows for s in strategy] for strategy in strategies], dtype=np.int64
    ).reshape(len(strategies), net.num_layers)
    cols = np.array(
        [[s.cols for s in strategy] for strategy in strategies], dtype=np.int64
    ).reshape(len(strategies), net.num_layers)
    row_groups, col_groups, kernel_split = _group_counts(net, rows, cols)
    return MappingBatch(
        net=net,
        rows=rows,
        cols=cols,
        row_groups=row_groups,
        col_groups=col_groups,
        kernel_split=kernel_split,
    )


# ----------------------------------------------------------------------
# Cost kernels — each float expression mirrors its scalar source's
# operator order exactly (see the module docstring's exactness contract).
# ----------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class EnergyTerms:
    """Per-layer dynamic-energy components (``energy.py`` terms), in nJ."""

    adc: np.ndarray
    dac: np.ndarray
    crossbar: np.ndarray
    shift_add: np.ndarray
    adder_tree: np.ndarray
    buffer: np.ndarray
    bus: np.ndarray


def batch_energy_terms(
    batch: MappingBatch, config: HardwareConfig
) -> EnergyTerms:
    """Vectorized ``energy.layer_dynamic_energy`` over every layer."""
    net = batch.net
    const = network_constants(net, config)
    phase_factor = const.phase_factor

    used_cols = batch.used_columns_total
    adc_cols = used_cols + config.idle_line_energy_fraction * (
        batch.allocated_columns_total - used_cols
    )
    used_rows = batch.used_rows_total
    dac_rows = used_rows + config.idle_line_energy_fraction * (
        batch.allocated_rows_total - used_rows
    )
    out_bytes = net.out_channels
    # ``a * b * c`` associates as ``(a * b) * c`` — hoisting the shared
    # ``phase_factor * adc_cols`` product performs the identical ops.
    phase_adc_cols = phase_factor * adc_cols

    # Crossbar and buffer terms depend only on the network's (L,)
    # constants; broadcast them up so an (S, L) batch yields (S, L)
    # terms throughout (identical rows — still bit-exact).
    shape = batch.rows.shape

    def full(term: np.ndarray) -> np.ndarray:
        return term if term.shape == shape else np.broadcast_to(term, shape)

    return EnergyTerms(
        adc=full(phase_adc_cols * config.energy_adc_nj()),
        dac=full(phase_factor * dac_rows * config.energy_dac_nj),
        crossbar=full(const.crossbar_nj),
        shift_add=full(phase_adc_cols * config.energy_shift_add_nj),
        adder_tree=full(
            net.mvm_ops * batch.partial_sum_adds * config.energy_adder_nj
        ),
        buffer=full(const.buffer_nj),
        bus=full(
            net.mvm_ops
            * (net.in_bytes * batch.col_groups + out_bytes)
            * config.energy_bus_nj_per_byte
        ),
    )


def batch_adc_conversions(
    batch: MappingBatch, config: HardwareConfig
) -> np.ndarray:
    """Vectorized ``energy.layer_adc_conversions`` (int64)."""
    return (
        batch.net.mvm_ops
        * batch.used_columns_total
        * config.input_cycles
        * config.xbars_per_group
    )


def batch_dac_conversions(
    batch: MappingBatch, config: HardwareConfig
) -> np.ndarray:
    """Vectorized ``energy.layer_dac_conversions`` (int64)."""
    return (
        batch.net.mvm_ops
        * batch.used_rows_total
        * config.input_cycles
        * config.xbars_per_group
    )


def batch_layer_latency_ns(
    batch: MappingBatch, config: HardwareConfig
) -> np.ndarray:
    """Vectorized ``latency.layer_latency_ns`` over every layer."""
    net = batch.net
    const = network_constants(net, config)
    chain = np.minimum(
        config.adc_sharing, batch.used_columns_per_crossbar_max
    )
    analog_phase = (
        config.latency_dac_ns
        + config.latency_xbar_ns
        + chain * config.latency_adc_ns
        + config.latency_shift_add_ns
    )
    tree = batch.adder_tree_depth * config.latency_adder_ns
    out_bytes = net.out_channels
    movement = const.movement_buffer_ns + (
        net.in_bytes * batch.col_groups + out_bytes
    ) * config.latency_bus_ns_per_byte
    mvm_latency = (
        config.input_cycles * analog_phase
        + tree
        + movement
        + config.latency_control_ns
    )
    return net.mvm_ops * mvm_latency


def batch_tile_area_um2(
    rows: np.ndarray, cols: np.ndarray, config: HardwareConfig
) -> np.ndarray:
    """Vectorized ``area.tile_area_um2`` for per-layer crossbar geometry."""
    adcs = np.ceil(cols / config.adc_sharing)
    per_physical = (
        rows * cols * config.area_cell_um2
        + adcs * config.area_adc_um2()
        + rows * config.area_dac_um2
        + adcs * config.area_shift_add_um2
    )
    slot = per_physical * config.xbars_per_group
    return (
        config.logical_xbars_per_tile * slot
        + config.pes_per_tile * config.area_pe_overhead_um2
        + config.area_tile_overhead_um2
    )


def batch_utilization(batch: MappingBatch) -> np.ndarray:
    """Eq. 4 intra-array utilization per layer (``LayerMapping.utilization``)."""
    total_cells = batch.num_crossbars * (batch.rows * batch.cols)
    return batch.net.weight_counts / total_cells


def area_from_layer_runs(
    tile_areas: np.ndarray, counts: Sequence[int] | np.ndarray
) -> float:
    """``area.area_from_tile_runs`` on arrays — one addition per tile.

    ``np.repeat`` expands each layer's tile area ``count`` times (zero
    counts drop out, like the scalar ``count <= 0`` skip) and the cumsum
    left-folds the expansion exactly like the scalar per-tile loop.
    """
    expanded = np.repeat(tile_areas, counts)
    if expanded.size == 0:
        return 0.0
    return float(np.cumsum(expanded)[-1])


def pooling_totals(
    net: NetworkArrays, config: HardwareConfig
) -> tuple[float, float]:
    """``(pooling energy nJ, pooling latency ns)`` for the whole network.

    Folds the memoised per-stage pooled-element counts in layer order,
    replaying ``energy.pooling_energy`` / ``latency.pooling_latency_ns``.
    Memoised per ``(net, config)`` via :func:`network_constants`.
    """
    const = network_constants(net, config)
    return const.pool_energy_nj, const.pool_latency_ns


# ----------------------------------------------------------------------
# Shape tables — per-(network, config) memoised kernel outputs
# ----------------------------------------------------------------------
#
# Every per-layer cost term above is *elementwise* in (layer, shape): no
# term couples two layers or two shapes.  So the full cost surface of a
# network under a candidate set is a (term, shape, layer) table, computed
# once per (network, config) by running the (S, L) batch kernels over
# uniform-shape rows — and evaluating a strategy collapses to one
# fancy-index gather of that table plus the fold kernels.  Gathering
# copies the exact float64 values the kernels produced, so the table path
# is bit-identical to computing each strategy from scratch.

#: Row names of :attr:`ShapeTable.floats`, in row order.  The parity
#: analyzer (PAR003) checks these registries against the ``_F_*`` /
#: ``_I_*`` index unpacks below, so adding a row in one place but not
#: the other fails ``repro check --kernel-parity``.
SHAPE_TABLE_FLOAT_ROWS: tuple[str, ...] = (
    "adc",
    "dac",
    "crossbar",
    "shift_add",
    "adder_tree",
    "buffer",
    "bus",
    "layer_latency_ns",
    "tile_area_um2",
    "utilization",
)
#: Row names of :attr:`ShapeTable.ints`, in row order.
SHAPE_TABLE_INT_ROWS: tuple[str, ...] = (
    "num_crossbars",
    "adc_conversions",
    "dac_conversions",
)

#: Row order of :attr:`ShapeTable.floats`.
(_F_ADC, _F_DAC, _F_XBAR, _F_SHIFT, _F_TREE, _F_BUF, _F_BUS,
 _F_LATENCY, _F_AREA, _F_UTIL) = range(10)
#: Row order of :attr:`ShapeTable.ints`.
(_I_XBARS, _I_ADC_CONV, _I_DAC_CONV) = range(3)


@dataclass(frozen=True, eq=False)
class ShapeTable:
    """Per-layer kernel outputs for every known crossbar shape.

    ``floats`` is ``(10, C, L)`` — the seven dynamic-energy components,
    layer latency, tile area, and Eq. 4 intra-array utilization;
    ``ints`` is ``(3, C, L)`` — crossbar counts and ADC/DAC conversion
    counts.  ``C`` indexes :attr:`shapes`; ``L`` is the layer axis.
    """

    shapes: tuple[CrossbarShape, ...]
    index: dict[CrossbarShape, int]
    floats: np.ndarray
    ints: np.ndarray


def _build_table(
    net: NetworkArrays, config: HardwareConfig, shapes: tuple[CrossbarShape, ...]
) -> ShapeTable:
    """Run the (C, L) batch kernels — shape ``c`` uniform across layers."""
    num = len(shapes)
    layers = net.num_layers
    rows = np.broadcast_to(
        np.fromiter((s.rows for s in shapes), np.int64, num)[:, None],
        (num, layers),
    )
    cols = np.broadcast_to(
        np.fromiter((s.cols for s in shapes), np.int64, num)[:, None],
        (num, layers),
    )
    row_groups, col_groups, kernel_split = _group_counts(net, rows, cols)
    batch = MappingBatch(
        net=net,
        rows=rows,
        cols=cols,
        row_groups=row_groups,
        col_groups=col_groups,
        kernel_split=kernel_split,
    )
    terms = batch_energy_terms(batch, config)
    floats = np.stack(
        (
            terms.adc,
            terms.dac,
            terms.crossbar,
            terms.shift_add,
            terms.adder_tree,
            terms.buffer,
            terms.bus,
            batch_layer_latency_ns(batch, config),
            batch_tile_area_um2(batch.rows, batch.cols, config),
            batch_utilization(batch),
        )
    )
    ints = np.stack(
        (
            batch.num_crossbars,
            batch_adc_conversions(batch, config),
            batch_dac_conversions(batch, config),
        )
    )
    return ShapeTable(
        shapes=shapes,
        index={shape: i for i, shape in enumerate(shapes)},
        floats=_frozen(floats),
        ints=_frozen(ints),
    )


def shape_table(
    net: NetworkArrays,
    config: HardwareConfig,
    shapes_needed: Sequence[CrossbarShape],
) -> ShapeTable:
    """The (extended-on-demand) shape table of one ``(net, config)`` pair.

    Tables are stashed on the net record keyed by config.  A strategy
    mentioning an unknown shape triggers a rebuild with the union of
    shapes — immutable snapshots swapped by a single dict assignment, so
    a concurrent rebuild is a benign lost update (both snapshots carry
    correct values; the loser's extra shapes are recomputed on next use).
    """
    tables: dict[HardwareConfig, ShapeTable]
    tables = net.__dict__.get("_shape_tables")  # type: ignore[assignment]
    if tables is None:
        tables = {}
        object.__setattr__(net, "_shape_tables", tables)
    table = tables.get(config)
    known = table.index if table is not None else {}
    missing = dict.fromkeys(s for s in shapes_needed if s not in known)
    if table is None or missing:
        shapes = (table.shapes if table is not None else ()) + tuple(missing)
        table = _build_table(net, config, shapes)
        if len(tables) >= 64:  # bound config-sweep workloads
            tables.clear()
        tables[config] = table
    return table


def _layer_range(net: NetworkArrays) -> np.ndarray:
    """Cached ``arange(L)`` used as the layer axis of table gathers."""
    rng = net.__dict__.get("_layer_range")
    if rng is None:
        rng = _frozen(np.arange(net.num_layers))
        object.__setattr__(net, "_layer_range", rng)
    return rng


def strategy_view(
    network: Network, strategy: Sequence[CrossbarShape], config: HardwareConfig
) -> tuple[NetworkArrays, np.ndarray, np.ndarray]:
    """Gather one strategy's per-layer kernel rows from the shape table.

    Returns ``(net, floats, ints)`` with ``floats`` of shape ``(10, L)``
    and ``ints`` of shape ``(3, L)`` (row order: the ``_F_*`` / ``_I_*``
    constants).
    """
    net = cached_network_arrays(network)
    if len(strategy) != net.num_layers:
        raise ValueError(
            f"strategy length {len(strategy)} != layer count {net.num_layers}"
        )
    tables = net.__dict__.get("_shape_tables")
    table = tables.get(config) if tables is not None else None
    if table is None:
        table = shape_table(net, config, strategy)
    try:
        idx = np.fromiter(
            (table.index[s] for s in strategy), np.int64, net.num_layers
        )
    except KeyError:
        # Unknown shape — extend the table once, then gather.
        table = shape_table(net, config, strategy)
        idx = np.fromiter(
            (table.index[s] for s in strategy), np.int64, net.num_layers
        )
    layer_axis = _layer_range(net)
    return net, table.floats[:, idx, layer_axis], table.ints[:, idx, layer_axis]


# ----------------------------------------------------------------------
# Metric assembly
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InfeasibleScore:
    """A batch-scored strategy that overflows the bank.

    Carries the exact :class:`~repro.sim.simulator.CapacityError` message
    the scalar path would raise, so cached infeasible sentinels compare
    equal across paths.
    """

    message: str


def _leakage_energy_nj(
    occupied_tiles: np.ndarray | int,
    occupied_slots: np.ndarray | int,
    allocated_cells: np.ndarray | int,
    latency_ns: np.ndarray | float,
    config: HardwareConfig,
) -> np.ndarray | float:
    """``energy.leakage_energy``, elementwise over batch aggregates."""
    group = config.xbars_per_group
    power_nw = (
        occupied_slots * group * config.leak_xbar_nw
        + occupied_tiles * config.leak_tile_nw
        + allocated_cells * group * config.leak_cell_nw
    )
    return power_nw * latency_ns * NW_NS_TO_NJ


def _layer_costs(
    strategy: Sequence[CrossbarShape],
    net: NetworkArrays,
    floats: np.ndarray,
    ints: np.ndarray,
) -> tuple[LayerCost, ...]:
    """Per-layer ``LayerCost`` records from gathered ``(10/3, L)`` rows."""
    f = floats.tolist()
    n = ints.tolist()
    layer_indices = net.layer_indices.tolist()
    mvm_ops = net.mvm_ops.tolist()
    return tuple(
        LayerCost(
            layer_index=layer_indices[i],
            shape_str=str(strategy[i]),
            mvm_ops=mvm_ops[i],
            num_crossbars=n[_I_XBARS][i],
            adc_conversions=n[_I_ADC_CONV][i],
            dac_conversions=n[_I_DAC_CONV][i],
            energy=EnergyBreakdown(
                adc=f[_F_ADC][i],
                dac=f[_F_DAC][i],
                crossbar=f[_F_XBAR][i],
                shift_add=f[_F_SHIFT][i],
                adder_tree=f[_F_TREE][i],
                buffer=f[_F_BUF][i],
                bus=f[_F_BUS][i],
            ),
            latency_ns=f[_F_LATENCY][i],
            intra_utilization=f[_F_UTIL][i],
        )
        for i in range(net.num_layers)
    )


def _assemble_metrics(
    network: Network,
    strategy: Sequence[CrossbarShape],
    net: NetworkArrays,
    summary: AllocationSummary,
    totals: Sequence[float],
    floats: np.ndarray,
    ints: np.ndarray,
    config: HardwareConfig,
    *,
    tile_shared: bool,
    detailed: bool,
) -> SystemMetrics:
    """One strategy's :class:`SystemMetrics` from folded kernel rows.

    ``totals`` holds the eight folds (seven energy components + dynamic
    latency); ``floats``/``ints`` are the strategy's gathered per-layer
    rows.  Each rollup is bit-identical to the scalar loop.
    """
    (adc_t, dac_t, xbar_t, shift_t, tree_t, buf_t, bus_t,
     dynamic_latency) = totals
    pool_e, pool_t = pooling_totals(net, config)
    latency = dynamic_latency + pool_t
    leak = float(
        _leakage_energy_nj(
            summary.occupied_tiles,
            summary.total_crossbar_slots,
            summary.allocated_cells,
            latency,
            config,
        )
    )
    breakdown = EnergyBreakdown(
        adc=adc_t,
        dac=dac_t,
        crossbar=xbar_t,
        shift_add=shift_t,
        adder_tree=tree_t,
        buffer=buf_t,
        bus=bus_t,
        pooling=pool_e,
        leakage=leak,
    )
    layer_costs: tuple[LayerCost, ...] = ()
    if detailed:
        layer_costs = _layer_costs(strategy, net, floats, ints)
    return SystemMetrics(
        network_name=network.name,
        strategy=tuple(str(s) for s in strategy),
        utilization=summary.utilization,
        energy_nj=breakdown.total,
        latency_ns=latency,
        area_um2=area_from_layer_runs(
            floats[_F_AREA], summary.tiles_per_layer
        ),
        occupied_tiles=summary.occupied_tiles,
        occupied_crossbars=int(ints[_I_XBARS].sum()),
        empty_crossbars=summary.empty_crossbars,
        tile_shared=tile_shared,
        energy_breakdown=breakdown,
        layer_costs=layer_costs,
    )


def metrics_from_view(
    network: Network,
    strategy: Sequence[CrossbarShape],
    net: NetworkArrays,
    floats: np.ndarray,
    ints: np.ndarray,
    summary: AllocationSummary,
    config: HardwareConfig,
    *,
    tile_shared: bool,
    detailed: bool,
) -> SystemMetrics:
    """Assemble one strategy's :class:`SystemMetrics` from a gathered view.

    The vectorized equivalent of ``Simulator._evaluate_impl``'s cost
    rollup.  One stacked cumsum folds the seven component rows plus the
    latency row at once; each row folds independently, so the per-row
    result is the same strict left fold as eight separate scalar loops.
    """
    totals = left_fold(floats[:_F_AREA]).tolist()
    return _assemble_metrics(
        network,
        strategy,
        net,
        summary,
        totals,
        floats,
        ints,
        config,
        tile_shared=tile_shared,
        detailed=detailed,
    )


def score_strategy_batch(
    network: Network,
    strategies: Sequence[Sequence[CrossbarShape]],
    config: HardwareConfig,
    *,
    tile_shared: bool,
    enforce_capacity: bool,
    detailed: bool = False,
    tracer: Tracer = NULL_TRACER,
) -> list[SystemMetrics | InfeasibleScore]:
    """Score a whole candidate batch with ``(S, L)`` array gathers.

    One ``(10, S, L)`` table gather plus one stacked cumsum computes every
    layer cost and fold of every strategy; the allocation summary
    (Algorithm 1's memoised group outcomes) and the final
    :class:`SystemMetrics` assembly stay per-strategy.  Returns one entry
    per strategy, in order: a :class:`SystemMetrics`, or an
    :class:`InfeasibleScore` carrying the exact message the scalar path's
    ``CapacityError`` would (``Simulator.summarize``'s format — the cached
    sentinels must compare equal across paths).
    """
    strategies = [tuple(s) for s in strategies]
    net = cached_network_arrays(network)
    for strategy in strategies:
        if len(strategy) != net.num_layers:
            raise ValueError(
                f"strategy length {len(strategy)} != layer count "
                f"{net.num_layers}"
            )
    table = shape_table(
        net, config, [s for strategy in strategies for s in strategy]
    )
    index = table.index
    idx = np.array(
        [[index[s] for s in strategy] for strategy in strategies],
        dtype=np.int64,
    ).reshape(len(strategies), net.num_layers)
    layer_axis = _layer_range(net)
    floats = table.floats[:, idx, layer_axis]   # (10, S, L)
    ints = table.ints[:, idx, layer_axis]       # (3, S, L)
    # (8, S) folds — each (strategy, component) row folds independently.
    totals = left_fold(floats[:_F_AREA])
    totals_rows = totals.T.tolist()
    counts_rows = ints[_I_XBARS].tolist()

    results: list[SystemMetrics | InfeasibleScore] = []
    for s, strategy in enumerate(strategies):
        summary = summarize_counts(
            strategy,
            tuple(counts_rows[s]),
            net.weight_cells_total,
            config.logical_xbars_per_tile,
            tile_shared=tile_shared,
            tracer=tracer,
        )
        if enforce_capacity and summary.occupied_tiles > config.tiles_per_bank:
            results.append(
                InfeasibleScore(
                    f"strategy needs {summary.occupied_tiles} tiles; one "
                    f"bank holds {config.tiles_per_bank}"
                )
            )
            continue
        results.append(
            _assemble_metrics(
                network,
                strategy,
                net,
                summary,
                totals_rows[s],
                floats[:, s],
                ints[:, s],
                config,
                tile_shared=tile_shared,
                detailed=detailed,
            )
        )
    return results
