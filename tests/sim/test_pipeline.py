"""Tests for the pipeline throughput model and replication balancing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape
from repro.models import lenet, vgg16
from repro.sim.pipeline import (
    PipelineReport,
    pipeline_report,
    replication_crossbar_cost,
)
from repro.sim.replication import balance_replication, replication_speedup

SHAPE = CrossbarShape(72, 64)


def uniform(net, shape=SHAPE):
    return tuple(shape for _ in net.layers)


class TestPipelineReport:
    def test_stage_per_layer(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        assert len(report.stages) == lenet_net.num_layers
        assert report.network_name == "LeNet"

    def test_bottleneck_is_max_stage(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        assert report.bottleneck_ns == max(s.service_ns for s in report.stages)
        assert report.bottleneck_stage.service_ns == report.bottleneck_ns

    def test_first_conv_dominates_vgg(self, vgg_net):
        """Early layers with big feature maps bottleneck the pipeline."""
        report = pipeline_report(vgg_net, uniform(vgg_net))
        assert report.bottleneck_stage.layer_index in (0, 1)

    def test_fill_is_sum(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        assert report.fill_ns == pytest.approx(
            sum(s.service_ns for s in report.stages)
        )

    def test_batch_latency_formula(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        assert report.batch_latency_ns(1) == pytest.approx(report.fill_ns)
        assert report.batch_latency_ns(11) == pytest.approx(
            report.fill_ns + 10 * report.bottleneck_ns
        )

    def test_batch_latency_rejects_nonpositive(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        with pytest.raises(ValueError):
            report.batch_latency_ns(0)

    def test_throughput_inverse_of_bottleneck(self, lenet_net):
        report = pipeline_report(lenet_net, uniform(lenet_net))
        assert report.throughput_img_per_s == pytest.approx(
            1e9 / report.bottleneck_ns
        )

    def test_stage_utilisation_bounded(self, vgg_net):
        report = pipeline_report(vgg_net, uniform(vgg_net))
        u = report.stage_utilisation()
        assert all(0 < x <= 1.0 + 1e-12 for x in u)
        assert max(u) == pytest.approx(1.0)
        assert 0 < report.balance <= 1.0

    def test_rejects_strategy_mismatch(self, lenet_net):
        with pytest.raises(ValueError):
            pipeline_report(lenet_net, (SHAPE,))

    def test_rejects_bad_replication(self, lenet_net):
        with pytest.raises(ValueError):
            pipeline_report(lenet_net, uniform(lenet_net), replication=[1])
        with pytest.raises(ValueError):
            pipeline_report(
                lenet_net, uniform(lenet_net),
                replication=[0] * lenet_net.num_layers,
            )

    def test_replication_divides_service_time(self, lenet_net):
        base = pipeline_report(lenet_net, uniform(lenet_net))
        reps = [2] + [1] * (lenet_net.num_layers - 1)
        doubled = pipeline_report(lenet_net, uniform(lenet_net), replication=reps)
        b0 = base.stages[0].service_ns
        b1 = doubled.stages[0].service_ns
        assert b1 < b0
        # ceil(mvm/2) waves: roughly half the time.
        assert b1 == pytest.approx(
            b0 * math.ceil(lenet_net.layers[0].mvm_ops / 2)
            / lenet_net.layers[0].mvm_ops,
            rel=1e-6,
        )


class TestCrossbarCost:
    def test_unreplicated_cost_matches_mapping(self, lenet_net):
        from repro.arch.mapping import map_layer

        expected = sum(
            map_layer(l, SHAPE).num_crossbars for l in lenet_net.layers
        )
        assert replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        ) == expected

    def test_replicas_multiply_cost(self, lenet_net):
        ones = [1] * lenet_net.num_layers
        twos = [2] * lenet_net.num_layers
        assert replication_crossbar_cost(
            lenet_net, uniform(lenet_net), twos
        ) == 2 * replication_crossbar_cost(lenet_net, uniform(lenet_net), ones)


class TestBalanceReplication:
    def test_budget_respected(self, lenet_net):
        base = replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        )
        budget = base + 20
        reps, report = balance_replication(
            lenet_net, uniform(lenet_net), crossbar_budget=budget
        )
        assert replication_crossbar_cost(lenet_net, uniform(lenet_net), reps) <= budget

    def test_rejects_insufficient_budget(self, lenet_net):
        with pytest.raises(ValueError, match="budget"):
            balance_replication(lenet_net, uniform(lenet_net), crossbar_budget=0)

    def test_zero_headroom_keeps_ones(self, lenet_net):
        base = replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        )
        reps, _ = balance_replication(
            lenet_net, uniform(lenet_net), crossbar_budget=base
        )
        assert all(r == 1 for r in reps)

    def test_throughput_never_degrades(self, lenet_net):
        base = pipeline_report(lenet_net, uniform(lenet_net))
        cost = replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        )
        _, balanced = balance_replication(
            lenet_net, uniform(lenet_net), crossbar_budget=cost + 50
        )
        assert balanced.throughput_img_per_s >= base.throughput_img_per_s

    def test_speedup_grows_with_budget(self, lenet_net):
        cost = replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        )
        small = replication_speedup(
            lenet_net, uniform(lenet_net), crossbar_budget=cost + 5
        )
        large = replication_speedup(
            lenet_net, uniform(lenet_net), crossbar_budget=cost + 200
        )
        assert large >= small >= 1.0
        assert large > 1.5  # meaningful gain with real headroom

    def test_replicas_go_to_heavy_stages(self, vgg_net):
        cost = replication_crossbar_cost(
            vgg_net, uniform(vgg_net), [1] * vgg_net.num_layers
        )
        reps, _ = balance_replication(
            vgg_net, uniform(vgg_net), crossbar_budget=cost + 100
        )
        # The 32x32-input conv layers get more replicas than the FC head.
        assert reps[0] > reps[-1]
        assert reps[-1] == 1

    def test_replication_capped_at_mvm_count(self, lenet_net):
        cost = replication_crossbar_cost(
            lenet_net, uniform(lenet_net), [1] * lenet_net.num_layers
        )
        reps, _ = balance_replication(
            lenet_net, uniform(lenet_net), crossbar_budget=cost + 10_000_000
        )
        for layer, r in zip(lenet_net.layers, reps):
            assert r <= layer.mvm_ops

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_budget_monotone_property(self, headroom):
        net = lenet()
        strategy = uniform(net)
        cost = replication_crossbar_cost(net, strategy, [1] * net.num_layers)
        s1 = replication_speedup(net, strategy, crossbar_budget=cost + headroom)
        s2 = replication_speedup(
            net, strategy, crossbar_budget=cost + headroom + 50
        )
        assert s2 >= s1 - 1e-9
