"""ReRAM device non-ideality models (extension beyond the paper).

The paper assumes ideal cells; real ReRAM suffers conductance variation
and stuck-at faults, and several of its citations ([24], [7]) motivate
variability-aware control.  This module injects the two standard fault
models into a functional layer engine so the accuracy impact of crossbar
choice can be studied:

* **Conductance variation** — each programmed cell's effective value is
  perturbed with lognormal multiplicative noise; on binary cells this is
  realised as a probability of reading the wrong level, derived from the
  noise magnitude.
* **Stuck-at faults** — a fraction of cells is stuck at LRS (reads 1) or
  HRS (reads 0) regardless of the programmed value.

Both models perturb the *cell planes* of a
:class:`~repro.sim.functional.FunctionalLayerEngine` in place, which keeps
the downstream bit-serial pipeline unchanged — faults propagate through
ADC, shift-add, and offset decoding exactly as they would in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .functional import FunctionalLayerEngine


@dataclass(frozen=True)
class VariationModel:
    """Fault-injection parameters."""

    #: std-dev of the lognormal conductance perturbation (sigma of ln G);
    #: a binary cell flips when its perturbed level crosses the sensing
    #: threshold, i.e. with probability P(|N(0, sigma)| > ln 2).
    conductance_sigma: float = 0.0
    #: fraction of cells stuck at LRS (always conduct, read as 1)
    stuck_at_on: float = 0.0
    #: fraction of cells stuck at HRS (never conduct, read as 0)
    stuck_at_off: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.conductance_sigma < 0:
            raise ValueError("conductance_sigma must be non-negative")
        for frac in (self.stuck_at_on, self.stuck_at_off):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("stuck-at fractions must be in [0, 1]")
        if self.stuck_at_on + self.stuck_at_off > 1.0:
            raise ValueError("stuck-at fractions must sum to at most 1")

    @property
    def flip_probability(self) -> float:
        """Probability a 1-bit cell reads the wrong level under variation."""
        if self.conductance_sigma == 0.0:  # numeric-ok: NUM004 (exact disabled-sentinel check)
            return 0.0
        from math import erf, log, sqrt

        z = log(2.0) / self.conductance_sigma
        return 1.0 - erf(z / sqrt(2.0))

    @property
    def is_ideal(self) -> bool:
        return (
            self.conductance_sigma == 0.0  # numeric-ok: NUM004 (exact disabled-sentinel check)
            and self.stuck_at_on == 0.0  # numeric-ok: NUM004 (exact disabled-sentinel check)
            and self.stuck_at_off == 0.0  # numeric-ok: NUM004 (exact disabled-sentinel check)
        )


def inject_faults(
    engine: FunctionalLayerEngine, model: VariationModel
) -> dict[str, int]:
    """Perturb an engine's programmed cell planes per the fault model.

    Returns counts of the injected fault events.  Idempotent only in the
    sense of applying to the *current* cell state; build a fresh engine to
    re-inject with different parameters.
    """
    if model.is_ideal:
        return {"flipped": 0, "stuck_on": 0, "stuck_off": 0}
    rng = np.random.default_rng(model.seed)
    cells = engine._cells  # (wbits, rg, rows, cout) binary planes
    flipped = stuck_on = stuck_off = 0

    p_flip = model.flip_probability
    if p_flip > 0.0:
        mask = rng.random(cells.shape) < p_flip
        flipped = int(mask.sum())
        cells[mask] ^= 1

    if model.stuck_at_on > 0.0 or model.stuck_at_off > 0.0:
        r = rng.random(cells.shape)
        on_mask = r < model.stuck_at_on
        off_mask = (r >= model.stuck_at_on) & (
            r < model.stuck_at_on + model.stuck_at_off
        )
        stuck_on = int((on_mask & (cells == 0)).sum())
        stuck_off = int((off_mask & (cells == 1)).sum())
        cells[on_mask] = 1
        cells[off_mask] = 0
    return {"flipped": flipped, "stuck_on": stuck_on, "stuck_off": stuck_off}


def relative_output_error(
    engine: FunctionalLayerEngine,
    reference_wq: np.ndarray,
    x_q: np.ndarray,
) -> float:
    """RMS error of the (possibly faulty) engine vs the exact product,
    normalised by the RMS of the exact product."""
    exact = np.atleast_2d(x_q) @ np.asarray(reference_wq, dtype=np.int64)
    actual = engine.mvm_batch(np.atleast_2d(x_q))
    denom = float(np.sqrt(np.mean(exact.astype(np.float64) ** 2))) or 1.0
    return float(np.sqrt(np.mean((actual - exact).astype(np.float64) ** 2))) / denom
