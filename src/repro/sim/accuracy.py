"""Classification-accuracy evaluation utilities (extension).

The paper's metrics never touch accuracy — quantized crossbar inference
is assumed faithful.  The functional engine lets us *check* that
assumption: this module runs batches through both the crossbar pipeline
and the float reference, and reports agreement and degradation under
device faults.

With random (untrained) weights "accuracy" against true labels is
meaningless, so the headline metric is **prediction agreement**: how
often the crossbar pipeline's argmax matches the float model's, plus the
logit-level error.  For fault studies this is exactly the quantity of
interest — an ideal pipeline scores 100% agreement by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from ..models.graph import Network
from .functional import FunctionalNetworkEngine
from .variation import VariationModel, inject_faults


@dataclass(frozen=True)
class AgreementReport:
    """Crossbar-vs-float agreement over a batch."""

    samples: int
    agreements: int
    mean_logit_rel_error: float
    adc_saturations: int

    @property
    def agreement_rate(self) -> float:
        return self.agreements / self.samples if self.samples else 0.0


def evaluate_agreement(
    network: Network,
    strategy: tuple[CrossbarShape, ...],
    *,
    batch: int = 16,
    seed: int = 0,
    config: HardwareConfig = DEFAULT_CONFIG,
    variation: VariationModel | None = None,
) -> AgreementReport:
    """Push a synthetic batch through crossbars and the float reference.

    ``variation`` optionally injects device faults into every layer's
    cell planes before inference.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    engine = FunctionalNetworkEngine(network, strategy, config=config, seed=seed)
    if variation is not None and not variation.is_ideal:
        for i, layer_engine in enumerate(engine.engines):
            inject_faults(
                layer_engine,
                VariationModel(
                    conductance_sigma=variation.conductance_sigma,
                    stuck_at_on=variation.stuck_at_on,
                    stuck_at_off=variation.stuck_at_off,
                    seed=variation.seed + i,
                ),
            )
    images = network.dataset.synthetic_batch(batch, seed=seed + 1)
    agreements = 0
    errors = []
    for b in range(batch):
        q = engine.forward(images[b])
        ref = engine.reference_forward(images[b])
        agreements += int(np.argmax(q) == np.argmax(ref))
        scale = float(np.abs(ref).max()) or 1.0
        errors.append(float(np.abs(q - ref).max()) / scale)
    return AgreementReport(
        samples=batch,
        agreements=agreements,
        mean_logit_rel_error=float(np.mean(errors)),
        adc_saturations=engine.counters().adc_saturations,
    )


def fault_sweep(
    network: Network,
    strategy: tuple[CrossbarShape, ...],
    sigmas: tuple[float, ...] = (0.0, 0.3, 0.6, 1.0),
    *,
    batch: int = 8,
    seed: int = 0,
    config: HardwareConfig = DEFAULT_CONFIG,
) -> dict[float, AgreementReport]:
    """Agreement vs conductance-variation strength."""
    return {
        sigma: evaluate_agreement(
            network,
            strategy,
            batch=batch,
            seed=seed,
            config=config,
            variation=VariationModel(conductance_sigma=sigma, seed=seed),
        )
        for sigma in sigmas
    }
