"""Unit tests for the Network container."""

import pytest

from repro.models import CIFAR10, MNIST, Network
from repro.models.layers import LayerSpec, PoolSpec


def build_small():
    return Network.build(
        "small",
        CIFAR10,
        [
            LayerSpec.conv(3, 8, 3, padding=1, name="c1"),
            PoolSpec("max", 2, 2),
            LayerSpec.conv(8, 16, 3, padding=1, name="c2"),
            PoolSpec("max", 2, 2),
            LayerSpec.fc(16 * 8 * 8, 10, name="f1"),
        ],
    )


class TestBuild:
    def test_layer_count_excludes_pools(self):
        assert build_small().num_layers == 3

    def test_input_size_propagation(self):
        net = build_small()
        assert net.layers[0].input_size == 32
        assert net.layers[1].input_size == 16

    def test_indices_assigned_in_order(self):
        net = build_small()
        assert [l.index for l in net.layers] == [0, 1, 2]

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError, match="input channels"):
            Network.build(
                "bad", CIFAR10, [LayerSpec.conv(4, 8, 3)]
            )

    def test_fc_flatten_mismatch_rejected(self):
        with pytest.raises(ValueError, match="FC layer"):
            Network.build(
                "bad",
                CIFAR10,
                [
                    LayerSpec.conv(3, 8, 3, padding=1),
                    LayerSpec.fc(999, 10),
                ],
            )

    def test_fc_accepts_channel_count_form(self):
        # An FC taking just the channel count (post global pooling to 1x1).
        net = Network.build(
            "net",
            MNIST,
            [
                LayerSpec.conv(1, 8, 3, padding=1),
                PoolSpec("avg", 28, 28),
                LayerSpec.fc(8, 10),
            ],
        )
        assert net.num_layers == 2

    def test_rejects_unknown_stage_type(self):
        with pytest.raises(TypeError):
            Network.build("bad", CIFAR10, ["not-a-layer"])  # type: ignore[list-item]


class TestAccessors:
    def test_total_weights(self):
        net = build_small()
        expected = 3 * 8 * 9 + 8 * 16 * 9 + 16 * 64 * 10
        assert net.total_weights == expected

    def test_total_macs_positive(self):
        assert build_small().total_macs > build_small().total_weights

    def test_conv_and_fc_partition(self):
        net = build_small()
        assert len(net.conv_layers()) == 2
        assert len(net.fc_layers()) == 1
        assert len(net.conv_layers()) + len(net.fc_layers()) == net.num_layers

    def test_pool_after(self):
        net = build_small()
        assert net.pool_after(0) is not None
        assert net.pool_after(2) is None

    def test_pool_after_out_of_range(self):
        with pytest.raises(IndexError):
            build_small().pool_after(99)

    def test_iteration_and_len(self):
        net = build_small()
        assert len(net) == 3
        assert [l.name for l in net] == ["c1", "c2", "f1"]

    def test_describe_lists_all_layers(self):
        text = build_small().describe()
        assert "L  1" in text and "L  3" in text
        assert "small" in text
