"""Sequential network container.

A :class:`Network` is an ordered list of stages (weight layers and pooling
ops) plus a dataset descriptor.  On construction it propagates feature-map
sizes through the pipeline — so each :class:`~repro.models.layers.LayerSpec`
knows the ``ins`` it will see at inference time — and assigns layer indices.

Only the weight-bearing layers (``network.layers``) participate in crossbar
mapping and the RL search; pooling stages matter to the latency/energy
models and to feature-map-size propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .datasets import DatasetSpec
from .layers import LayerSpec, LayerType, PoolSpec, Stage


@dataclass(frozen=True)
class Network:
    """An immutable sequential DNN description bound to a dataset."""

    name: str
    dataset: DatasetSpec
    stages: tuple[Stage, ...]

    @staticmethod
    def build(
        name: str,
        dataset: DatasetSpec,
        items: Sequence[LayerSpec | PoolSpec],
    ) -> "Network":
        """Assemble a network, propagating input sizes and indices.

        ``items`` alternates freely between :class:`LayerSpec` (shape
        placeholders — their ``input_size`` is overwritten here) and
        :class:`PoolSpec`.  The first layer's input size comes from the
        dataset; each CONV output feeds the next stage; the first FC layer
        flattens whatever spatial extent remains.
        """
        stages: list[Stage] = []
        size = dataset.image_size
        channels = dataset.channels
        index = 0
        for item in items:
            if isinstance(item, PoolSpec):
                size = item.output_size(size)
                stages.append(Stage(pool=item))
                continue
            if not isinstance(item, LayerSpec):
                raise TypeError(f"unsupported stage item: {item!r}")
            layer = item
            if layer.layer_type is LayerType.CONV:
                if layer.in_channels != channels:
                    raise ValueError(
                        f"layer {index} ({layer.name or layer.describe()}) expects "
                        f"{layer.in_channels} input channels but the pipeline "
                        f"provides {channels}"
                    )
                layer = layer.with_input_size(size).with_index(index)
                size = layer.output_size
                channels = layer.out_channels
            else:
                flat = channels * size * size
                if layer.in_channels not in (flat, channels):
                    raise ValueError(
                        f"FC layer {index} expects {layer.in_channels} inputs but "
                        f"the pipeline provides {flat} (= {channels}x{size}x{size})"
                    )
                layer = layer.with_index(index)
                size = 1
                channels = layer.out_channels
            stages.append(Stage(layer=layer))
            index += 1
        return Network(name=name, dataset=dataset, stages=tuple(stages))

    # ------------------------------------------------------------------
    @property
    def layers(self) -> tuple[LayerSpec, ...]:
        """The weight-bearing layers, in execution order."""
        return tuple(s.layer for s in self.stages if s.layer is not None)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_weights(self) -> int:
        """Total scalar weight count across all layers."""
        return sum(layer.weight_count for layer in self.layers)

    @property
    def total_macs(self) -> int:
        """Total MAC operations for one inference pass."""
        return sum(layer.macs for layer in self.layers)

    def conv_layers(self) -> tuple[LayerSpec, ...]:
        return tuple(l for l in self.layers if l.layer_type is LayerType.CONV)

    def fc_layers(self) -> tuple[LayerSpec, ...]:
        return tuple(l for l in self.layers if l.layer_type is LayerType.FC)

    def pool_after(self, layer_index: int) -> PoolSpec | None:
        """The pooling stage immediately following weight layer ``layer_index``."""
        seen = -1
        for pos, stage in enumerate(self.stages):
            if stage.layer is not None:
                seen += 1
                if seen == layer_index:
                    if pos + 1 < len(self.stages) and self.stages[pos + 1].pool is not None:
                        return self.stages[pos + 1].pool
                    return None
        raise IndexError(f"layer index {layer_index} out of range")

    def pool_after_or_none(self, layer_index: int) -> PoolSpec | None:
        """:meth:`pool_after`, but ``None`` for an out-of-range index.

        The single source of truth for "does a pooling stage follow this
        layer?" used by every cost model (``repro.sim.energy`` /
        ``latency`` / ``kernels``) and the controller walk — cost rollups
        iterate candidate indices and must not treat a trailing layer as
        an error.
        """
        try:
            return self.pool_after(layer_index)
        except IndexError:
            return None

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return self.num_layers

    def describe(self) -> str:
        """Multi-line structural summary (Table-2 style)."""
        lines = [f"{self.name} on {self.dataset.name} ({self.num_layers} weight layers)"]
        for layer in self.layers:
            lines.append(f"  L{layer.index + 1:>3}: {layer.describe()}")
        return "\n".join(lines)
