"""``repro.obs`` — structured observability for the AUTOHET repro.

Zero-dependency span/event/counter tracing (:mod:`.trace`), pluggable
sinks (:mod:`.sinks`), paper-grounded metric streams (:mod:`.metrics`),
trace-file validation and rollups (:mod:`.summary`), and the project's
single logging bridge (:mod:`.log`).

The default tracer everywhere is :data:`NULL_TRACER`, a no-op whose
``enabled`` flag lets instrumented code skip record construction with
one attribute check — see ``docs/observability.md`` for the catalogue,
the JSONL schema, and measured overhead.
"""

from .log import configure_cli_logging, get_logger
from .sinks import InMemorySink, JsonlSink, LoggingSink
from .summary import (
    CounterStats,
    SpanStats,
    TraceSummary,
    read_jsonl,
    summarize_jsonl,
    summarize_records,
    validate_record,
)
from .trace import (
    NULL_TRACER,
    RECORD_TYPES,
    SCHEMA_VERSION,
    NullTracer,
    Tracer,
    current_tracer,
    set_ambient_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "RECORD_TYPES",
    "SCHEMA_VERSION",
    "CounterStats",
    "InMemorySink",
    "JsonlSink",
    "LoggingSink",
    "NullTracer",
    "SpanStats",
    "TraceSummary",
    "Tracer",
    "configure_cli_logging",
    "current_tracer",
    "get_logger",
    "read_jsonl",
    "set_ambient_tracer",
    "summarize_jsonl",
    "summarize_records",
    "use_tracer",
    "validate_record",
]
