"""Append pytest-benchmark runs to a repo-root performance trajectory.

The bench-smoke CI job produces one ``--benchmark-json`` report per run
and uploads it as an artifact — useful for inspecting *that* run, useless
for asking "did the kernels get slower over the last month?".  This
module keeps the longitudinal answer in the repository itself: a
JSON-array trajectory file (``BENCH_vectorized.json`` /
``BENCH_search_time.json`` at the repo root) to which each CI run appends
one compact record — timestamp, commit, and per-benchmark mean plus the
``extra_info`` gates the benchmarks publish (speedups, hit rates,
per-strategy microseconds).

Usage (what the CI steps run)::

    python -m repro.bench.trajectory bench-vectorized.json BENCH_vectorized.json

The commit id comes from ``--commit``, else ``$GITHUB_SHA``, else the
report's own ``commit_info``.  The file is bounded (oldest records drop
past ``--max-entries``) so it stays reviewable in diffs.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Any

#: default bound on trajectory length — one CI run per entry
DEFAULT_MAX_ENTRIES = 200


def compact_record(report: dict[str, Any], commit: str | None = None) -> dict[str, Any]:
    """One trajectory entry from a full pytest-benchmark report."""
    if commit is None:
        commit = os.environ.get("GITHUB_SHA") or report.get(
            "commit_info", {}
        ).get("id")
    benchmarks = []
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("name"),
                "mean_s": stats.get("mean"),
                "stddev_s": stats.get("stddev"),
                "rounds": stats.get("rounds"),
                "extra_info": bench.get("extra_info", {}),
            }
        )
    return {
        "datetime": report.get("datetime"),
        "commit": commit,
        "benchmarks": benchmarks,
    }


def append_record(
    bench_json: str | Path,
    trajectory_json: str | Path,
    *,
    commit: str | None = None,
    max_entries: int = DEFAULT_MAX_ENTRIES,
) -> dict[str, Any]:
    """Append ``bench_json``'s compact record to ``trajectory_json``.

    Creates the trajectory file if missing; raises :class:`ValueError`
    when an existing file does not hold a JSON array (the trajectory is
    append-only history — refusing beats clobbering).  Returns the
    record appended.
    """
    report = json.loads(Path(bench_json).read_text())
    if not isinstance(report, dict):
        raise ValueError(f"{bench_json}: not a pytest-benchmark report object")
    trajectory_path = Path(trajectory_json)
    if trajectory_path.exists():
        history = json.loads(trajectory_path.read_text())
        if not isinstance(history, list):
            raise ValueError(f"{trajectory_json}: expected a JSON array")
    else:
        history = []
    record = compact_record(report, commit=commit)
    history.append(record)
    if max_entries > 0:
        history = history[-max_entries:]
    trajectory_path.write_text(json.dumps(history, indent=2) + "\n")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.trajectory",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("bench_json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("trajectory_json", help="trajectory file to append to")
    parser.add_argument(
        "--commit", default=None,
        help="commit id to stamp (default: $GITHUB_SHA, else the report's)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=DEFAULT_MAX_ENTRIES,
        help="keep at most this many records (0 = unbounded)",
    )
    args = parser.parse_args(argv)
    record = append_record(
        args.bench_json,
        args.trajectory_json,
        commit=args.commit,
        max_entries=args.max_entries,
    )
    names = ", ".join(b["name"] or "?" for b in record["benchmarks"])
    print(
        f"appended {len(record['benchmarks'])} benchmark(s) to "
        f"{args.trajectory_json}: {names}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
