"""Kernel parity analysis — the scalar cost path vs. the batch kernels.

PR 7 forked the cost model: the scalar reference (``sim/energy.py`` /
``sim/latency.py`` / ``sim/area.py`` / ``allocation/summary.py``, walked
from :meth:`~repro.sim.simulator.Simulator.evaluate`) and the NumPy batch
path in :mod:`repro.sim.kernels` must agree bit-for-bit.  Runtime parity
tests sample that contract; this module proves its *input* half
statically, the way :mod:`repro.analysis.dataflow` proves cache-key
coverage: the dataflow interpreter extracts the attribute read-set of
the scalar path, and the declared coverage tables
(:data:`repro.sim.kernels.KERNEL_COVERAGE` /
:data:`~repro.sim.kernels.KERNEL_DERIVED_COLUMNS`) must tile it exactly
against the columns the kernels actually define.

========  =============================================================
PAR001    scalar read with no (live) kernel column behind it (ERROR)
PAR002    dead kernel column / dangling coverage declaration (WARNING)
PAR003    replicated kernel constant diverging from its scalar
          source of truth — row registries vs. index unpacks, derived
          MappingBatch columns vs. LayerMapping members, the kernels'
          replica of a scalar error-message format string (ERROR)
========  =============================================================

Entry points: :func:`analyze_kernel_parity_tree` (generic, over any
:class:`~repro.analysis.callgraph.ModuleIndex`) and
:func:`analyze_kernel_parity` (the repro tree's own contract, wired into
``repro check --kernel-parity``).  See docs/static_analysis.md ("The
kernel coverage-table contract").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from .callgraph import ClassInfo, ModuleIndex, ModuleInfo
from .dataflow import MemoContract, _Analyzer
from .invariants import PAR001, PAR002, PAR003, Diagnostic

#: Coverage targets that name no column: ``"builder"`` marks a value the
#: batch scorer passes through itself; ``"shared"`` marks an attribute
#: both paths reach through the same shared code on the same object.
SENTINEL_TARGETS: frozenset[str] = frozenset({"builder", "shared"})


@dataclass(frozen=True)
class ParityContract:
    """What to analyze and what the kernel coverage tables claim."""

    #: scalar entry points, ``"module:Class.method"`` / ``"module:func"``
    roots: tuple[str, ...]
    #: dotted name of the kernels module inside the analyzed index
    kernel_module: str
    #: scalar class -> field -> kernel columns (``"Class.column"``) or
    #: sentinel targets; the PAR001 side of the contract
    coverage: Mapping[str, Mapping[str, tuple[str, ...]]]
    #: kernel class -> columns derived from covered ones; the PAR002 side
    derived: Mapping[str, tuple[str, ...]]
    #: kernel class -> ((registry constant, index-unpack prefix), ...) for
    #: classes whose columns are named by row registries (ShapeTable)
    registries: Mapping[str, tuple[tuple[str, str], ...]] = ()  # type: ignore[assignment]
    #: kernel class -> scalar class its derived columns must mirror
    mirrors: Mapping[str, str] = ()  # type: ignore[assignment]
    #: (reference function, replica function) pairs whose f-string
    #: formats must agree (the CapacityError / InfeasibleScore message)
    message_pairs: tuple[tuple[str, str], ...] = ()
    #: module-name prefixes excluded from the scalar traversal (the
    #: kernels themselves, the cache, observability, this analyzer)
    boundary_modules: tuple[str, ...] = ()


# ----------------------------------------------------------------------
# Kernel column extraction
# ----------------------------------------------------------------------


def _registry_names(
    module: ModuleInfo, const_name: str
) -> tuple[str, ...] | None:
    """The string entries of a module-level registry tuple, or None."""
    const = module.constants.get(const_name)
    if const is None or const.value is None:
        return None
    try:
        value = ast.literal_eval(const.value)
    except (ValueError, SyntaxError):
        return None
    if isinstance(value, (tuple, list)) and all(
        isinstance(item, str) for item in value
    ):
        return tuple(value)
    return None


def _class_columns(cls: ClassInfo) -> frozenset[str]:
    """Data columns of a kernel class: annotated fields + properties."""
    return frozenset(cls.fields) | frozenset(cls.properties)


def _index_unpacks(module: ModuleInfo) -> dict[str, tuple[int, int, int]]:
    """``(_F_A, _F_B, ...) = range(N)`` unpacks, keyed by name prefix.

    Tuple unpacks never reach :attr:`ModuleInfo.constants` (the indexer
    only records single-name assigns), so the row-index registries are
    recovered from a raw walk.  Returns prefix ->
    ``(name count, range argument, line)``; the range argument is -1
    when the right-hand side is not a literal ``range(N)``.
    """
    out: dict[str, tuple[int, int, int]] = {}
    for node in ast.walk(module.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Tuple)
            and target.elts
            and all(isinstance(e, ast.Name) for e in target.elts)
        ):
            continue
        names = [e.id for e in target.elts if isinstance(e, ast.Name)]
        prefix = _common_prefix(names)
        if not prefix:
            continue
        arg = -1
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "range"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, int)
        ):
            arg = value.args[0].value
        out[prefix] = (len(names), arg, node.lineno)
    return out


def _common_prefix(names: list[str]) -> str:
    """Shared ``_X_`` naming prefix of an index unpack, or ``""``."""
    first = names[0]
    if not first.startswith("_") or first.count("_") < 2:
        return ""
    prefix = first[: first.index("_", 1) + 1]
    if all(name.startswith(prefix) for name in names):
        return prefix
    return ""


# ----------------------------------------------------------------------
# f-string format parity
# ----------------------------------------------------------------------


def _fstring_signature(node: ast.JoinedStr) -> str:
    """An f-string's static text with every interpolation as ``{}``.

    Adjacent f-string literals parse as one ``JoinedStr``, so the
    two-part capacity message normalizes to a single signature.
    """
    parts = []
    for value in node.values:
        if isinstance(value, ast.Constant):
            parts.append(str(value.value))
        else:
            parts.append("{}")
    return "".join(parts)


def _fstring_signatures(node: ast.AST) -> set[str]:
    return {
        _fstring_signature(sub)
        for sub in ast.walk(node)
        if isinstance(sub, ast.JoinedStr)
    }


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------


def analyze_kernel_parity_tree(
    index: ModuleIndex, contract: ParityContract
) -> list[Diagnostic]:
    """Run the kernel-parity analysis over an indexed tree.

    Returns PAR001/PAR002/PAR003 diagnostics ordered by rule id then
    location.  Raises :class:`ValueError` when a root or message-pair
    function cannot be resolved — a silent no-op analysis would report a
    clean bill it never earned.
    """
    diagnostics: list[Diagnostic] = []

    # ---- scalar read-set via the dataflow interpreter ----------------
    analyzer = _Analyzer(
        index,
        # Parity only needs the read-set; with no coverage classes the
        # interpreter tracks no purity targets, and its effects list
        # (sinks, mutations) stays the cache-safety pass's business.
        MemoContract(
            roots=(),
            coverage={},
            boundary_modules=contract.boundary_modules,
        ),
    )
    for root in contract.roots:
        func = index.resolve_qualname(root)
        if func is None:
            raise ValueError(f"cannot resolve analysis root {root!r}")
        analyzer.analyze_root(func)

    # ---- kernel columns as the analyzed source defines them ----------
    kmod = index.modules.get(contract.kernel_module)
    if kmod is None:
        raise ValueError(
            f"kernel module {contract.kernel_module!r} is not in the index"
        )
    columns: dict[str, frozenset[str]] = {}
    registries = dict(contract.registries or {})
    for cls_name, cls in kmod.classes.items():
        if cls_name in registries:
            continue
        columns[cls_name] = _class_columns(cls)
    for cls_name, specs in registries.items():
        rows: set[str] = set()
        for const_name, _prefix in specs:
            names = _registry_names(kmod, const_name)
            if names is None:
                diagnostics.append(
                    PAR003.diag(
                        f"{contract.kernel_module}:{const_name}",
                        f"row registry {const_name} is missing or is not a "
                        "literal tuple of row names",
                        hint="declare the registry next to the index unpack "
                        "it names",
                    )
                )
                continue
            rows.update(names)
        columns[cls_name] = frozenset(rows)

    # ---- PAR001: every in-scope scalar read needs a live column ------
    targeted: set[str] = set()
    for cls_name, fields in contract.coverage.items():
        for _field_name, targets in fields.items():
            targeted.update(t for t in targets if t not in SENTINEL_TARGETS)

    def column_exists(target: str) -> bool:
        owner, _, column = target.partition(".")
        return column in columns.get(owner, frozenset())

    for (cls_name, attr), location in sorted(analyzer.reads.items()):
        fields = contract.coverage.get(cls_name)
        if fields is None:
            continue  # not a class the kernels restructure into arrays
        targets = fields.get(attr)
        if targets is None:
            diagnostics.append(
                PAR001.diag(
                    location,
                    f"scalar cost path reads {cls_name}.{attr} but "
                    "KERNEL_COVERAGE maps it to no kernel column — the "
                    "vectorized path cannot see this input",
                    hint=f"fold {attr} into a NetworkArrays/MappingBatch/"
                    "ShapeTable column and declare it in KERNEL_COVERAGE",
                )
            )
            continue
        for target in targets:
            if target in SENTINEL_TARGETS:
                continue
            if not column_exists(target):
                diagnostics.append(
                    PAR001.diag(
                        location,
                        f"{cls_name}.{attr} is declared covered by kernel "
                        f"column {target}, which does not exist",
                        hint="restore the column or update KERNEL_COVERAGE",
                    )
                )

    # ---- PAR002: every kernel column needs a reason to exist ---------
    derived = {k: tuple(v) for k, v in contract.derived.items()}
    declared_classes = {
        t.partition(".")[0] for t in targeted
    } | set(derived)
    for cls_name in sorted(declared_classes):
        if cls_name not in columns:
            diagnostics.append(
                PAR002.diag(
                    f"{contract.kernel_module}:{cls_name}",
                    f"coverage tables reference kernel class {cls_name}, "
                    "which the kernels module does not define",
                    hint="restore the class or update the coverage tables",
                )
            )
            continue
        for column in sorted(columns[cls_name]):
            qualified = f"{cls_name}.{column}"
            if qualified in targeted or column in derived.get(cls_name, ()):
                continue
            diagnostics.append(
                PAR002.diag(
                    qualified,
                    "kernel column is neither a KERNEL_COVERAGE target nor "
                    "declared in KERNEL_DERIVED_COLUMNS — a dead column "
                    "that can drift from the scalar source of truth",
                    hint="declare its scalar provenance, or delete it",
                )
            )
        for column in derived.get(cls_name, ()):
            if column not in columns[cls_name]:
                diagnostics.append(
                    PAR002.diag(
                        f"{cls_name}.{column}",
                        "declared derived in KERNEL_DERIVED_COLUMNS but no "
                        "such kernel column exists",
                        hint="restore the column or drop the declaration",
                    )
                )

    read_classes = {cls_name for cls_name, _ in analyzer.reads}
    for cls_name in sorted(contract.coverage):
        if cls_name not in read_classes:
            # The class never materialised in the traversal; per-field
            # "never read" noise would just repeat that.
            continue
        for field_name in sorted(contract.coverage[cls_name]):
            if (cls_name, field_name) not in analyzer.reads:
                diagnostics.append(
                    PAR002.diag(
                        f"{cls_name}.{field_name}",
                        "declared in KERNEL_COVERAGE but the scalar cost "
                        "path never reads it — a dead coverage entry",
                        hint="drop the entry, or wire the field into the "
                        "scalar evaluation",
                    )
                )

    # ---- PAR003a: row registries vs. their index unpacks -------------
    unpacks = _index_unpacks(kmod)
    for cls_name, specs in sorted(registries.items()):
        for const_name, prefix in specs:
            names = _registry_names(kmod, const_name)
            if names is None:
                continue  # already reported above
            unpack = unpacks.get(prefix)
            if unpack is None:
                diagnostics.append(
                    PAR003.diag(
                        f"{contract.kernel_module}:{const_name}",
                        f"no ``({prefix}...) = range(N)`` index unpack "
                        f"found for registry {const_name}",
                        hint="keep the registry and its index unpack "
                        "side by side",
                    )
                )
                continue
            count, range_arg, lineno = unpack
            if len(names) != count or (range_arg >= 0 and range_arg != count):
                diagnostics.append(
                    PAR003.diag(
                        f"{contract.kernel_module}:{lineno}",
                        f"{const_name} declares {len(names)} row(s) but the "
                        f"{prefix}* index unpack binds {count} name(s) over "
                        f"range({range_arg}) — the registry and the row "
                        "indices have diverged",
                        hint="add/remove the row in both places",
                    )
                )

    # ---- PAR003b: derived columns must mirror the scalar class -------
    for kernel_cls, scalar_cls_name in sorted(dict(contract.mirrors or {}).items()):
        scalar_cls = index.find_class(scalar_cls_name)
        if scalar_cls is None:
            diagnostics.append(
                PAR003.diag(
                    f"{kernel_cls} -> {scalar_cls_name}",
                    f"mirror class {scalar_cls_name} is not in the index",
                    hint="fix the mirrors declaration",
                )
            )
            continue
        members = (
            frozenset(scalar_cls.fields)
            | frozenset(scalar_cls.properties)
            | frozenset(scalar_cls.methods)
        )
        for column in derived.get(kernel_cls, ()):
            if column not in members:
                diagnostics.append(
                    PAR003.diag(
                        f"{kernel_cls}.{column}",
                        f"derived kernel column has no same-named "
                        f"{scalar_cls_name} member to mirror — the scalar "
                        "source of truth is gone",
                        hint=f"keep {scalar_cls_name}.{column} and the "
                        "kernel column in lockstep, or rename both",
                    )
                )

    # ---- PAR003c: replicated message formats -------------------------
    for ref_qual, rep_qual in contract.message_pairs:
        ref = index.resolve_qualname(ref_qual)
        rep = index.resolve_qualname(rep_qual)
        if ref is None or rep is None:
            missing = ref_qual if ref is None else rep_qual
            raise ValueError(f"cannot resolve message-pair function {missing!r}")
        ref_sigs = _fstring_signatures(ref.node)
        rep_sigs = _fstring_signatures(rep.node)
        for signature in sorted(ref_sigs - rep_sigs):
            diagnostics.append(
                PAR003.diag(
                    f"{rep.module.name}:{rep.node.lineno}",
                    f"{rep_qual} no longer replicates the "
                    f"{ref_qual} message format {signature!r} — cached "
                    "infeasible sentinels would diverge between paths",
                    hint="keep the two f-strings byte-identical "
                    "(tests/sim/test_infeasible_messages.py is the "
                    "runtime witness)",
                )
            )

    diagnostics.sort(key=lambda d: (d.rule_id, d.location, d.message))
    return diagnostics


# ----------------------------------------------------------------------
# The repro tree's own contract
# ----------------------------------------------------------------------


def kernel_parity_contract() -> ParityContract:
    """The repro tree's kernel-parity contract.

    Coverage comes from the declarations in :mod:`repro.sim.kernels`
    (:data:`~repro.sim.kernels.KERNEL_COVERAGE` /
    :data:`~repro.sim.kernels.KERNEL_DERIVED_COLUMNS`) — the same tables
    documented next to the kernels, so the analyzer checks what the
    kernels declare, while column *existence* resolves against whatever
    source tree is being analyzed (which is what lets the tamper tests
    delete a field from the real sources and watch PAR001 fire).
    """
    from ..sim.kernels import KERNEL_COVERAGE, KERNEL_DERIVED_COLUMNS

    return ParityContract(
        roots=(
            "repro.sim.simulator:Simulator.evaluate",
            "repro.sim.simulator:Simulator.try_evaluate",
        ),
        kernel_module="repro.sim.kernels",
        coverage=KERNEL_COVERAGE,
        derived=KERNEL_DERIVED_COLUMNS,
        registries={
            "ShapeTable": (
                ("SHAPE_TABLE_FLOAT_ROWS", "_F_"),
                ("SHAPE_TABLE_INT_ROWS", "_I_"),
            ),
        },
        mirrors={"MappingBatch": "LayerMapping"},
        message_pairs=(
            (
                "repro.sim.simulator:Simulator._capacity_check",
                "repro.sim.kernels:score_strategy_batch",
            ),
        ),
        # The kernels are the *subject* of the comparison, not part of
        # the scalar walk; cache/obs/analysis are boundaries for the
        # same reasons as in the cache-safety contract.
        boundary_modules=(
            "repro.sim.kernels",
            "repro.sim.cache",
            "repro.obs",
            "repro.analysis",
        ),
    )


def analyze_kernel_parity(root: Path | None = None) -> list[Diagnostic]:
    """Prove (or refute) the scalar/kernel input-parity contract.

    Indexes the installed ``repro`` package (or an explicit source tree
    rooted at ``root``) and runs :func:`analyze_kernel_parity_tree` with
    the contract of :func:`kernel_parity_contract`.  An empty result is
    the theorem: every attribute the scalar cost path reads is carried
    by a live kernel column, no kernel column lacks a declared scalar
    provenance, and every replicated constant matches its source.
    """
    base = root if root is not None else Path(__file__).resolve().parent.parent
    index = ModuleIndex.from_package(Path(base), "repro")
    return analyze_kernel_parity_tree(index, kernel_parity_contract())
