"""Hardware tile: a set of PEs sharing buffers, an adder tree, and a
pooling module (Fig. 1 / Fig. 6 right).

The tile is the unit the Global Controller addresses and the minimum
allocation granularity of the baseline scheme; under the tile-shared
scheme (§3.4) one tile may hold crossbar blocks from several layers.
Every PE in a tile has the same crossbar geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from .pe import ProcessingElement
from .peripherals import AdderTree, PoolingModule


@dataclass(frozen=True)
class BlockAssignment:
    """One weight block's placement: which PE serves which array position.

    ``row_group`` / ``col_group`` locate the block within its layer's
    crossbar array (Fig. 7); the rows/cols ranges describe the used
    sub-rectangle of the PE's crossbars.
    """

    layer_index: int
    row_group: int
    col_group: int
    rows_used: int
    cols_used: int


@dataclass  # stateful: tracks per-PE block assignments during mapping
class HardwareTile:
    """A tile instance with per-PE block bookkeeping."""

    tile_id: int
    shape: CrossbarShape
    config: HardwareConfig = DEFAULT_CONFIG
    pes: list[ProcessingElement] = field(init=False)
    assignments: dict[int, BlockAssignment] = field(default_factory=dict)
    adder_tree: AdderTree = field(init=False)
    pooling: PoolingModule = field(init=False)

    def __post_init__(self) -> None:
        self.pes = [
            ProcessingElement(self.shape, self.config, pe_id=i)
            for i in range(self.config.pes_per_tile)
        ]
        self.adder_tree = AdderTree()
        self.pooling = PoolingModule()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self.pes)

    @property
    def occupied(self) -> int:
        return sum(1 for pe in self.pes if self.assignments.get(pe.pe_id))

    @property
    def free_slots(self) -> list[int]:
        return [pe.pe_id for pe in self.pes if pe.pe_id not in self.assignments]

    @property
    def layers(self) -> tuple[int, ...]:
        return tuple(sorted({a.layer_index for a in self.assignments.values()}))

    def assign_block(
        self,
        pe_id: int,
        assignment: BlockAssignment,
        encoded_block: np.ndarray,
    ) -> None:
        """Program one weight block into a free PE slot."""
        if pe_id in self.assignments:
            raise ValueError(f"PE {pe_id} of tile {self.tile_id} already assigned")
        if not 0 <= pe_id < self.capacity:
            raise IndexError(f"PE {pe_id} out of range")
        block = np.asarray(encoded_block)
        if block.shape != (assignment.rows_used, assignment.cols_used):
            raise ValueError(
                f"block shape {block.shape} != assignment "
                f"{(assignment.rows_used, assignment.cols_used)}"
            )
        self.pes[pe_id].program_block(0, 0, block)
        self.assignments[pe_id] = assignment

    def release(self, pe_id: int) -> None:
        """Erase one PE (tile-shared remapping moves blocks around)."""
        if pe_id in self.assignments:
            for xb in self.pes[pe_id].crossbars:
                xb.erase()
            del self.assignments[pe_id]

    def mvm_block(self, pe_id: int, x_q: np.ndarray) -> np.ndarray:
        """Run one block's MVM; returns encoded-domain partial sums."""
        if pe_id not in self.assignments:
            raise ValueError(f"PE {pe_id} of tile {self.tile_id} is empty")
        a = self.assignments[pe_id]
        x = np.asarray(x_q, dtype=np.int64)
        if x.size != a.rows_used:
            raise ValueError(f"input of {x.size} != block rows {a.rows_used}")
        out = self.pes[pe_id].mvm(x)
        return out[: a.cols_used]
