"""Hardware configuration for the heterogeneous ReRAM accelerator.

Two pieces live here:

* :class:`CrossbarShape` — the geometry of one crossbar array (``r x c``
  wordlines by bitlines).  The paper's candidates are square power-of-two
  crossbars (SXB) and rectangle crossbars whose height is a multiple of 9
  (RXB, §3.3).
* :class:`HardwareConfig` — every architectural parameter and per-component
  energy / area / latency constant of the behavioral simulator.

The constants are MNSIM-2.0 / ISAAC-inspired.  Absolute values are *not*
expected to match the authors' MNSIM checkout (which we cannot run here);
what matters for reproduction is the relational structure the paper's
conclusions rest on:

* ADC energy dominates dynamic energy and scales exponentially with
  resolution — so configurations that activate fewer ADC conversions win
  energy (paper Fig. 5).
* ADC area dominates peripheral area — so small crossbars, which need many
  more peripheral sets per stored cell, cost far more area (paper Table 5).
* Leakage scales with allocated hardware — so the tile-shared scheme's
  released tiles also save a little energy (paper Fig. 10, All vs +Hy).

Default architectural parameters follow §4.1: 8-bit weights, 1-bit cells
(hence a group of eight crossbars per PE representing one weight), 1-bit
DACs (hence eight bit-serial input cycles), 10-bit ADCs, four PEs per tile,
256x256 tiles per bank.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterable

from ..analysis.invariants import (
    InvariantViolation,
    adc_resolution_diagnostics,
    config_value_diagnostics,
    shape_dim_diagnostics,
)


@dataclass(frozen=True, order=True)
class CrossbarShape:
    """Geometry of one crossbar: ``rows`` wordlines x ``cols`` bitlines."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        # Same rule implementation (SHP001) as the static checker, so
        # construction-time and `repro check` validation cannot drift.
        diags = shape_dim_diagnostics(self.rows, self.cols, f"shape {self.rows}x{self.cols}")
        if diags:
            raise InvariantViolation(diags, "CrossbarShape")
        # Shapes are hashed and stringified on simulator hot paths
        # (grouping, shape-table gathers, SystemMetrics assembly);
        # precompute both.  ``hash((rows, cols))`` is exactly the value
        # the generated dataclass __hash__ would produce, and integer
        # tuple hashes are stable across processes, so the stash is safe
        # to pickle to pool workers.
        object.__setattr__(self, "_hash", hash((self.rows, self.cols)))
        object.__setattr__(self, "_str", f"{self.rows}x{self.cols}")

    @property
    def cells(self) -> int:
        """Memristor cell count of the array."""
        return self.rows * self.cols

    @property
    def is_square(self) -> bool:
        return self.rows == self.cols

    @property
    def is_rectangle(self) -> bool:
        """True for the paper's RXB shapes (height a multiple of 9, != width)."""
        return not self.is_square

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:  # e.g. "64x64", "36x32"
        return self._str  # type: ignore[attr-defined]

    @staticmethod
    def parse(text: str) -> "CrossbarShape":
        """Parse ``"RxC"`` (also accepts the unicode multiplication sign)."""
        cleaned = text.lower().replace("×", "x").strip()
        try:
            r_str, c_str = cleaned.split("x")
            return CrossbarShape(int(r_str), int(c_str))
        except (ValueError, TypeError) as exc:
            raise ValueError(f"cannot parse crossbar shape from {text!r}") from exc


# The five homogeneous baseline sizes (§4.1) ...
SQUARE_CANDIDATES: tuple[CrossbarShape, ...] = tuple(
    CrossbarShape(n, n) for n in (32, 64, 128, 256, 512)
)
# ... the five rectangle shapes of §4.3 (heights are multiples of 9) ...
RECTANGLE_CANDIDATES: tuple[CrossbarShape, ...] = tuple(
    CrossbarShape(r, c)
    for r, c in ((36, 32), (72, 64), (144, 128), (288, 256), (576, 512))
)
# ... and the default hybrid candidate set AutoHet searches over (§3.3):
# 32x32, 36x32, 72x64, 288x256, 576x512.
DEFAULT_CANDIDATES: tuple[CrossbarShape, ...] = (
    CrossbarShape(32, 32),
    CrossbarShape(36, 32),
    CrossbarShape(72, 64),
    CrossbarShape(288, 256),
    CrossbarShape(576, 512),
)


@dataclass(frozen=True)
class HardwareConfig:
    """All architectural and cost-model parameters of the simulator."""

    # ------------------------------------------------------------------
    # Precision / bit organisation (§4.1)
    # ------------------------------------------------------------------
    weight_bits: int = 8   #: quantized weight precision
    input_bits: int = 8    #: quantized activation precision
    cell_bits: int = 1     #: bits stored per memristor cell
    dac_bits: int = 1      #: DAC resolution (1 bit -> bit-serial inputs)
    adc_bits: int = 10     #: ADC resolution ("to support all heterogeneous sizes")

    # ------------------------------------------------------------------
    # Hierarchy (§4.1): bank -> tile -> PE -> crossbar-group
    # ------------------------------------------------------------------
    pes_per_tile: int = 4        #: PEs in one tile; one logical crossbar per PE
    tiles_per_bank: int = 256 * 256
    #: column-sharing factor of each ADC (1 = one ADC per bitline; >1 means
    #: a mux time-multiplexes that many bitlines onto one ADC).  The default
    #: of 1 reproduces the paper's setup: Fig. 5 counts one activated ADC
    #: per used bitline, and Table 5's area trend (small crossbars ~10x the
    #: area of large ones) requires per-bitline converters.
    adc_sharing: int = 1
    #: energy charged for an *idle* (weight-free) bitline/wordline of an
    #: occupied crossbar, as a fraction of an active line's conversion
    #: energy.  0.0 (default) charges only weight-holding lines — matching
    #: Fig. 5's activated-ADC counts; 1.0 charges every line of an
    #: occupied crossbar.  Kept as a knob for the accounting-convention
    #: ablation; the energy cost of wasted cells is instead captured by
    #: :attr:`leak_cell_nw`, which keeps homogeneous energy monotone in
    #: crossbar size (Fig. 9c) while still penalising low utilization
    #: (Fig. 3's Manual-Hetero ranking).
    idle_line_energy_fraction: float = 0.0
    #: fixed per-MVM control overhead of the Global Controller pipeline
    #: (instruction decode, buffer orchestration), in nanoseconds.
    latency_control_ns: float = 800.0

    # ------------------------------------------------------------------
    # Energy constants (nanojoules per event)
    # ------------------------------------------------------------------
    #: ADC energy per conversion at reference resolution (8 bits).  The
    #: effective per-conversion energy scales ~2^bits (SAR/flash trend used
    #: by MNSIM): e_adc(b) = energy_adc_8bit * 2^(b-8).
    energy_adc_8bit_nj: float = 2.0e-3
    #: DAC energy per 1-bit conversion.
    energy_dac_nj: float = 1.5e-5
    #: crossbar energy per active cell per analog read cycle.
    energy_cell_read_nj: float = 2.0e-7
    #: shift-and-add energy per partial-sum merge operation.
    energy_shift_add_nj: float = 2.0e-5
    #: adder-tree energy per partial-sum addition (inter-crossbar merge).
    energy_adder_nj: float = 1.0e-5
    #: buffer access energy per byte moved.
    energy_buffer_nj_per_byte: float = 6.0e-6
    #: bus/global-controller transfer energy per byte.
    energy_bus_nj_per_byte: float = 4.0e-6
    #: pooling-module energy per pooled element.
    energy_pool_nj: float = 5.0e-6
    #: leakage power per allocated crossbar's peripheral set (nW -> nJ/ns).
    leak_xbar_nw: float = 30.0
    #: leakage power per allocated tile's shared logic (buffers, control).
    leak_tile_nw: float = 120.0
    #: leakage power per allocated physical ReRAM cell (HRS sneak current
    #: plus its slice of wordline/bitline drivers).  Because every cell of
    #: an *allocated* crossbar leaks — holding a weight or not — this term
    #: makes wasted cells cost energy in proportion to (1/utilization),
    #: which is what lets a higher-utilization heterogeneous configuration
    #: beat the lowest-dynamic-energy homogeneous one on total energy
    #: (Fig. 3 / Fig. 10).
    leak_cell_nw: float = 0.1

    # ------------------------------------------------------------------
    # Latency constants (nanoseconds per event)
    # ------------------------------------------------------------------
    latency_dac_ns: float = 1.0        #: one DAC settle (per input bit cycle)
    latency_xbar_ns: float = 10.0      #: one analog crossbar evaluation
    latency_adc_ns: float = 1.0        #: one ADC conversion
    latency_shift_add_ns: float = 1.0  #: one shift-add stage
    latency_adder_ns: float = 1.0      #: one adder-tree level
    latency_pool_ns: float = 1.0       #: pooling per output element
    latency_buffer_ns_per_byte: float = 0.004
    latency_bus_ns_per_byte: float = 0.002

    # ------------------------------------------------------------------
    # Area constants (square micrometres)
    # ------------------------------------------------------------------
    #: one 1T1R ReRAM cell (~4F^2-ish at a 40 nm-class node).
    area_cell_um2: float = 0.0064
    #: ADC area at reference resolution (8 bits); scales ~2^(b-8) like energy.
    area_adc_8bit_um2: float = 1200.0
    #: one 1-bit DAC driver on a wordline.
    area_dac_um2: float = 0.17
    #: shift-and-add unit per ADC output.
    area_shift_add_um2: float = 60.0
    #: fixed per-tile overhead (control, buffers, pooling module).
    area_tile_overhead_um2: float = 15000.0
    #: fixed per-PE overhead (local registers, routing).
    area_pe_overhead_um2: float = 1500.0

    def __post_init__(self) -> None:
        # Construction-time validation reuses the CFG001-CFG003 rule
        # implementations of repro.analysis.invariants verbatim; the
        # static checker (`repro check --config`) runs the same functions
        # over serialized dicts, so the two can never disagree.
        diags = config_value_diagnostics(
            weight_bits=self.weight_bits,
            input_bits=self.input_bits,
            cell_bits=self.cell_bits,
            dac_bits=self.dac_bits,
            adc_bits=self.adc_bits,
            pes_per_tile=self.pes_per_tile,
            tiles_per_bank=self.tiles_per_bank,
            adc_sharing=self.adc_sharing,
        )
        if diags:
            raise InvariantViolation(diags, "HardwareConfig")
        # Configs key several hot-path memos (shape tables, network
        # constants, pooling totals), so the 35-field tuple hash is paid
        # multiple times per Simulator.evaluate.  Stash it once; every
        # field is an int or float, whose hashes Python computes by a
        # deterministic numeric algorithm (no per-process randomisation),
        # so the stashed value survives pickling to pool workers.
        object.__setattr__(
            self,
            "_hash",
            hash(tuple(getattr(self, f.name) for f in fields(self))),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def validate_for_candidates(self, shapes: Iterable[CrossbarShape]) -> None:
        """Reject an ADC resolution inconsistent with the candidate rows.

        CFG004 needs the crossbar shapes the platform will drive, which a
        config alone does not know — call this wherever a (config,
        candidate-set) pair is fixed, e.g. at search-environment
        construction.  Raises :class:`InvariantViolation` on breach.
        """
        diags = [
            d
            for shape in shapes
            for d in adc_resolution_diagnostics(
                self.adc_bits, shape.rows, self.cell_bits, f"shape {shape}"
            )
        ]
        if diags:
            raise InvariantViolation(diags, "HardwareConfig")

    # ------------------------------------------------------------------
    # Derived organisation
    # ------------------------------------------------------------------
    @property
    def xbars_per_group(self) -> int:
        """Physical crossbars ganged to hold one logical weight array.

        With 8-bit weights and 1-bit cells, eight bit-slice crossbars form
        one *logical* crossbar ("we group eight crossbars in each PE to
        represent one weight data", §4.1).
        """
        return self.weight_bits // self.cell_bits

    @property
    def input_cycles(self) -> int:
        """Bit-serial input cycles per MVM (8 with 8-bit inputs, 1-bit DACs)."""
        return self.input_bits // self.dac_bits

    @property
    def logical_xbars_per_tile(self) -> int:
        """Logical crossbar slots per tile — the tile allocation granularity.

        One logical crossbar (a bit-slice group) per PE, so this equals
        ``pes_per_tile``; Fig. 4's "number of crossbars contained in one
        tile" varies exactly this quantity.
        """
        return self.pes_per_tile

    # ------------------------------------------------------------------
    # Resolution-dependent component models
    # ------------------------------------------------------------------
    def energy_adc_nj(self, bits: int | None = None) -> float:
        """Energy of one ADC conversion at ``bits`` resolution (default cfg)."""
        b = self.adc_bits if bits is None else bits
        return self.energy_adc_8bit_nj * 2.0 ** (b - 8)

    def area_adc_um2(self, bits: int | None = None) -> float:
        """Area of one ADC at ``bits`` resolution (default cfg)."""
        b = self.adc_bits if bits is None else bits
        return self.area_adc_8bit_um2 * 2.0 ** (b - 8)

    def with_(self, **kwargs) -> "HardwareConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: The paper's default platform (§4.1).
DEFAULT_CONFIG = HardwareConfig()


# ----------------------------------------------------------------------
# The unit table — the dimensional-analysis contract (UNI rules)
# ----------------------------------------------------------------------
#: Declared physical unit of every numeric field the cost model carries
#: that the ``*_nj`` / ``*_ns`` / ``*_nw`` / ``*_um2`` / ``*_bytes`` /
#: ``*_nj_per_byte`` / ``*_fraction`` naming convention does not already
#: cover, keyed by class name (plus the ``"obs.streams"`` pseudo-class
#: for ``repro.obs`` counter streams).  ``repro.analysis.units`` — the
#: UNI rules, ``repro check --units`` — reads this table to seed its
#: abstract interpretation and to prove coverage: an unsuffixed numeric
#: field of any class named here (or of any class that has suffix-united
#: fields) with no entry is UNI002, and so is an entry naming a field
#: that no longer exists.  Dimensionless tokens (``count``, ``bit``,
#: ``fraction``, ``percent``, ``flag``, ``1``) are interchangeable in
#: arithmetic; dimensioned tokens (``nJ``, ``ns``, ``nW``, ``um2``,
#: ``byte``) are not.  The catalogue lives in docs/cost_model.md; the
#: contract in docs/static_analysis.md.
UNIT_TABLE: dict[str, dict[str, str]] = {
    "CrossbarShape": {
        "rows": "count",
        "cols": "count",
        "cells": "count",
    },
    "HardwareConfig": {
        "weight_bits": "bit",
        "input_bits": "bit",
        "cell_bits": "bit",
        "dac_bits": "bit",
        "adc_bits": "bit",
        "pes_per_tile": "count",
        "tiles_per_bank": "count",
        "adc_sharing": "count",
        "xbars_per_group": "count",
        "input_cycles": "count",
        "logical_xbars_per_tile": "count",
    },
    "EnergyBreakdown": {
        "adc": "nJ",
        "dac": "nJ",
        "crossbar": "nJ",
        "shift_add": "nJ",
        "adder_tree": "nJ",
        "buffer": "nJ",
        "bus": "nJ",
        "pooling": "nJ",
        "leakage": "nJ",
        "total": "nJ",
    },
    "LayerCost": {
        "layer_index": "count",
        "mvm_ops": "count",
        "num_crossbars": "count",
        "adc_conversions": "count",
        "dac_conversions": "count",
        "intra_utilization": "fraction",
    },
    "SystemMetrics": {
        "utilization": "fraction",
        "occupied_tiles": "count",
        "occupied_crossbars": "count",
        "empty_crossbars": "count",
        "utilization_percent": "percent",
    },
    "AllocationSummary": {
        "tile_capacity": "count",
        "occupied_tiles": "count",
        "empty_crossbars": "count",
        "allocated_cells": "count",
        "weight_cells": "count",
        "tiles_per_layer": "count",
        "total_crossbar_slots": "count",
        "utilization": "fraction",
    },
    "NetworkArrays": {
        "num_layers": "count",
        "layer_indices": "count",
        "mvm_ops": "count",
        "in_channels": "count",
        "out_channels": "count",
        "kernel_elems": "count",
        "weight_counts": "count",
        "weight_cells_total": "count",
        "pooled_elems": "count",
    },
    "MappingBatch": {
        "rows": "count",
        "cols": "count",
        "row_groups": "count",
        "col_groups": "count",
        "kernel_split": "flag",
        "num_crossbars": "count",
        "used_columns_total": "count",
        "allocated_columns_total": "count",
        "used_rows_total": "count",
        "allocated_rows_total": "count",
        "partial_sum_adds": "count",
        "adder_tree_depth": "count",
        "used_columns_per_crossbar_max": "count",
    },
    "EnergyTerms": {
        "adc": "nJ",
        "dac": "nJ",
        "crossbar": "nJ",
        "shift_add": "nJ",
        "adder_tree": "nJ",
        "buffer": "nJ",
        "bus": "nJ",
    },
    "_NetworkConstants": {
        "phase_factor": "count",
    },
    "obs.streams": {
        "sim.utilization": "fraction",
        "sim.energy_nj": "nJ",
        "sim.latency_ns": "ns",
        "alloc.occupied_tiles": "count",
        "sim.layer.utilization": "fraction",
        "sim.layer.adc_conversions": "count",
        "cache.hit_rate": "fraction",
        "rl.reward": "1",
        "rl.critic_loss": "1",
        "rl.actor_loss": "1",
        "serve.latency_ns": "ns",
        "serve.wait_ns": "ns",
        "serve.queue_depth": "count",
        "serve.batch_size": "count",
        "serve.slo_attainment": "fraction",
        "serve.throughput_rps": "1/s",
    },
}
