"""End-to-end tests for the ``repro check`` CLI subcommand."""

import json

import pytest

from repro.arch.config import CrossbarShape
from repro.arch.mapping import map_layer
from repro.cli import main
from repro.core.allocation import allocate_tile_based, apply_tile_sharing
from repro.models.zoo import lenet
from repro.serialize import save_plan, save_strategy


class TestCheckDefaults:
    def test_default_invocation_passes(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "check passed" in out

    def test_good_shapes_pass(self, capsys):
        assert main(["check", "--shapes", "32x32,36x32,576x512"]) == 0

    def test_bad_shape_fails_with_rule_id(self, capsys):
        # The acceptance fixture: a 35-row RXB.
        assert main(["check", "--shapes", "35x32"]) == 1
        assert "SHP002" in capsys.readouterr().out


class TestCheckConfig:
    def test_good_config_file(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"adc_bits": 10, "weight_bits": 8}))
        assert main(["check", "--config", str(path)]) == 0

    def test_broken_config_file_nonzero(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"weight_bits": 7, "cell_bits": 2}))
        assert main(["check", "--config", str(path)]) == 1
        assert "CFG002" in capsys.readouterr().out

    def test_config_checked_against_shapes(self, tmp_path, capsys):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"adc_bits": 6}))
        assert main(["check", "--config", str(path), "--shapes", "576x512"]) == 1
        assert "CFG004" in capsys.readouterr().out


class TestCheckModelStrategy:
    def test_good_model_and_strategy(self, tmp_path, capsys):
        net = lenet()
        path = tmp_path / "strategy.json"
        save_strategy([CrossbarShape(64, 64)] * net.num_layers, path)
        assert main(["check", "--model", "lenet", "--strategy", str(path)]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_model_alone_checks_graph(self, capsys):
        assert main(["check", "--model", "vgg16"]) == 0

    def test_strategy_without_model_rejected(self, tmp_path):
        path = tmp_path / "strategy.json"
        path.write_text("[]")
        with pytest.raises(SystemExit):
            main(["check", "--strategy", str(path)])

    def test_wrong_length_strategy_rejected(self, tmp_path):
        path = tmp_path / "strategy.json"
        save_strategy([CrossbarShape(64, 64)], path)
        with pytest.raises(SystemExit, match="length"):
            main(["check", "--model", "lenet", "--strategy", str(path)])


class TestCheckPlan:
    def make_plan(self, tmp_path, mutate=None):
        net = lenet()
        mappings = [map_layer(l, CrossbarShape(64, 64)) for l in net.layers]
        alloc = apply_tile_sharing(allocate_tile_based(mappings, 4))
        from repro.serialize import plan_to_dict

        doc = plan_to_dict(alloc)
        if mutate:
            mutate(doc)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        return path

    def test_round_tripped_plan_passes(self, tmp_path, capsys):
        path = self.make_plan(tmp_path)
        assert main(["check", "--plan", str(path)]) == 0

    def test_over_capacity_tile_flagged(self, tmp_path, capsys):
        def overfill(doc):
            tile = doc["tiles"][0]
            layer = next(iter(tile["occupants"]))
            tile["occupants"][layer] += tile["capacity"]

        path = self.make_plan(tmp_path, overfill)
        assert main(["check", "--plan", str(path)]) == 1
        assert "ALC001" in capsys.readouterr().out

    def test_double_booked_plan_flagged(self, tmp_path, capsys):
        def double_book(doc):
            doc["tiles"].append(
                {
                    "tile_id": 999,
                    "shape": doc["tiles"][0]["shape"],
                    "capacity": doc["tile_capacity"],
                    "occupants": {"0": 1},
                }
            )

        path = self.make_plan(tmp_path, double_book)
        assert main(["check", "--plan", str(path)]) == 1
        assert "ALC002" in capsys.readouterr().out


class TestCheckSource:
    def test_source_tree_clean(self, capsys):
        assert main(["check", "--source"]) == 0

    def test_explicit_dirty_tree(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x={}):\n    return x\n")
        assert main(["check", "--source", str(tmp_path)]) == 1
        assert "LNT002" in capsys.readouterr().out


class TestCheckCacheSafety:
    FIXTURE_TREE = "tests/analysis/fixtures/unsound_tree"

    def test_real_tree_is_cache_safe(self, capsys):
        # The shipped simulator satisfies its own keying contract.
        assert main(["check", "--cache-safety"]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_unsound_fixture_reports_cac001(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "unsound_tree"
        assert main(["check", "--cache-safety", "--source", str(fixture)]) == 1
        out = capsys.readouterr().out
        assert "CAC001" in out
        assert "undocumented_knob" in out
        assert "CAC003" in out
        assert "PUR001" in out

    def test_default_invocation_includes_cache_safety(self, capsys):
        assert main(["check"]) == 0
        assert "cache-key soundness" in capsys.readouterr().out


class TestCheckNumeric:
    FIXTURE = "tests/analysis/fixtures/unsafe_numeric_tree"

    def test_real_tree_is_numerically_clean(self, capsys):
        assert main(["check", "--numeric"]) == 0
        out = capsys.readouterr().out
        assert "numeric safety" in out
        assert "check passed" in out

    def test_unsafe_fixture_reports_every_num_rule(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "unsafe_numeric_tree"
        assert main(["check", "--numeric", "--source", str(fixture)]) == 1
        out = capsys.readouterr().out
        for rule in ("NUM001", "NUM002", "NUM003", "NUM004", "NUM005"):
            assert rule in out

    def test_default_invocation_includes_numeric(self, capsys):
        assert main(["check"]) == 0
        assert "numeric safety" in capsys.readouterr().out


class TestCheckKernelParity:
    def test_real_tree_satisfies_parity(self, capsys):
        assert main(["check", "--kernel-parity"]) == 0
        out = capsys.readouterr().out
        assert "kernel parity" in out
        assert "check passed" in out

    def test_divergent_fixture_reports_par_rules(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "divergent_kernel_tree"
        assert main(["check", "--kernel-parity", "--source", str(fixture)]) == 1
        out = capsys.readouterr().out
        assert "PAR001" in out
        assert "PAR002" in out
        assert "PAR003" in out

    def test_default_invocation_includes_kernel_parity(self, capsys):
        assert main(["check"]) == 0
        assert "kernel parity" in capsys.readouterr().out

    def test_parity_warnings_ratchet_even_at_zero_exit(self, tmp_path, capsys):
        # PAR002 is a WARNING (exit 0 alone) but the shared zero-baseline
        # ratchet still fails the build on it; prove the wiring end to
        # end on the divergent fixture where errors already force exit 1
        # and the ratchet lines name every PAR rule.
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "divergent_kernel_tree"
        baseline = tmp_path / "ratchet.json"
        baseline.write_text(json.dumps({}))
        args = [
            "check", "--kernel-parity", "--source", str(fixture),
            "--ratchet", str(baseline),
        ]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "ratchet: PAR002" in out


class TestCheckUnits:
    def test_real_tree_is_dimensionally_clean(self, capsys):
        assert main(["check", "--units"]) == 0
        out = capsys.readouterr().out
        assert "dimensional consistency" in out
        assert "check passed" in out

    def test_mixed_units_fixture_reports_every_uni_rule(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "mixed_units_tree"
        assert main(["check", "--units", "--source", str(fixture)]) == 1
        out = capsys.readouterr().out
        for rule in ("UNI001", "UNI002", "UNI003", "UNI004", "UNI005"):
            assert rule in out

    def test_default_invocation_includes_units(self, capsys):
        assert main(["check"]) == 0
        assert "dimensional consistency" in capsys.readouterr().out


class TestCheckJsonFormat:
    def run_json(self, capsys, args):
        code = main(args)
        out = capsys.readouterr().out
        return code, json.loads(out)  # exactly one JSON document on stdout

    def test_clean_tree_emits_single_ok_document(self, capsys):
        code, doc = self.run_json(capsys, ["check", "--format", "json"])
        assert code == 0
        assert doc["ok"] is True
        assert doc["findings"] == []
        assert doc["summary"] == {"errors": 0, "warnings": 0, "total": 0}
        assert doc["ratchet_violations"] == []

    def test_no_progress_narration_in_json_mode(self, capsys):
        code = main(["check", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "check passed" not in out
        assert "dimensional consistency" not in out

    def test_findings_carry_structured_fields(self, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "mixed_units_tree"
        code, doc = self.run_json(
            capsys,
            ["check", "--units", "--source", str(fixture), "--format", "json"],
        )
        assert code == 1
        assert doc["ok"] is False
        rules = [f["rule"] for f in doc["findings"]]
        assert set(rules) == {"UNI001", "UNI002", "UNI003", "UNI004", "UNI005"}
        for finding in doc["findings"]:
            assert finding["severity"] == "error"
            assert ":" in finding["location"]
            assert finding["message"]
            assert finding["hint"]
        uni004 = next(f for f in doc["findings"] if f["rule"] == "UNI004")
        assert uni004["data"] == {"inferred": "nJ", "declared": "ns"}
        assert doc["summary"]["errors"] == len(doc["findings"])
        assert doc["summary"]["total"] == len(doc["findings"])

    def test_ratchet_violations_surface_in_json(self, tmp_path, capsys):
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "mixed_units_tree"
        baseline = tmp_path / "ratchet.json"
        baseline.write_text(json.dumps({}))
        code, doc = self.run_json(
            capsys,
            [
                "check", "--units", "--source", str(fixture),
                "--format", "json", "--ratchet", str(baseline),
            ],
        )
        assert code == 1
        assert any("UNI001" in v for v in doc["ratchet_violations"])


class TestListRules:
    def test_text_catalogue_lists_every_uni_rule(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("UNI001", "UNI002", "UNI003", "UNI004", "UNI005"):
            assert rule in out
        assert "units contract" in out

    def test_json_catalogue_is_structured(self, capsys):
        assert main(["check", "--list-rules", "--format", "json"]) == 0
        rules = json.loads(capsys.readouterr().out)
        by_id = {r["rule"]: r for r in rules}
        assert by_id["UNI001"]["severity"] == "error"
        assert by_id["UNI001"]["anchor"] == "units contract"
        assert by_id["UNI001"]["title"]

    def test_list_rules_runs_no_passes(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "check passed" not in out
        assert "dimensional consistency" not in out

    def test_docs_catalogue_matches_registry(self, capsys):
        """Every registered rule id appears in docs/static_analysis.md and
        the docs never cite a rule id the registry does not know."""
        import re
        from pathlib import Path

        assert main(["check", "--list-rules", "--format", "json"]) == 0
        registered = {r["rule"] for r in json.loads(capsys.readouterr().out)}
        docs = (
            Path(__file__).resolve().parents[2] / "docs" / "static_analysis.md"
        ).read_text()
        documented = set(re.findall(r"\b[A-Z]{3}\d{3}\b", docs))
        assert registered <= documented, sorted(registered - documented)
        assert documented <= registered, sorted(documented - registered)


class TestCheckRatchet:
    def write_baseline(self, tmp_path, mapping):
        path = tmp_path / "ratchet.json"
        path.write_text(json.dumps(mapping))
        return path

    def test_zero_baseline_passes_on_clean_tree(self, tmp_path, capsys):
        path = self.write_baseline(tmp_path, {"_comment": "zero tolerance"})
        args = ["check", "--source", "--cache-safety", "--ratchet", str(path)]
        assert main(args) == 0
        assert "check passed" in capsys.readouterr().out

    def test_unlisted_rule_defaults_to_zero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x={}):\n    return x\n")
        path = self.write_baseline(tmp_path, {})
        args = ["check", "--source", str(tmp_path), "--ratchet", str(path)]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "ratchet: LNT002" in out

    def test_grandfathered_count_passes(self, tmp_path, capsys):
        (tmp_path / "legacy.py").write_text("print('grandfathered')\n")
        path = self.write_baseline(tmp_path, {"LNT001": 1})
        args = ["check", "--source", str(tmp_path), "--ratchet", str(path)]
        assert main(args) == 1  # LNT001 is an ERROR rule -> still exit 1
        assert "ratchet" not in capsys.readouterr().out

    def test_exceeding_grandfathered_count_reports(self, tmp_path, capsys):
        (tmp_path / "legacy.py").write_text("print('a')\nprint('b')\n")
        path = self.write_baseline(tmp_path, {"LNT001": 1})
        args = ["check", "--source", str(tmp_path), "--ratchet", str(path)]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "ratchet: LNT001 has 2 finding(s), baseline allows 1" in out

    def test_repo_ratchet_file_is_current(self, capsys):
        # The committed CI baseline must hold against the shipped tree.
        from pathlib import Path

        ratchet = (
            Path(__file__).resolve().parents[2]
            / ".github"
            / "diagnostic-ratchet.json"
        )
        args = [
            "check", "--source", "--cache-safety", "--numeric",
            "--kernel-parity", "--units", "--ratchet", str(ratchet),
        ]
        assert main(args) == 0


class TestPlanSerialization:
    def test_save_plan_round_trips(self, tmp_path):
        from repro.serialize import load_plan_dict

        net = lenet()
        mappings = [map_layer(l, CrossbarShape(72, 64)) for l in net.layers]
        alloc = allocate_tile_based(mappings, 4)
        path = tmp_path / "plan.json"
        save_plan(alloc, path)
        doc = load_plan_dict(path)
        assert doc["tile_capacity"] == 4
        assert len(doc["layers"]) == net.num_layers
        assert sum(len(t["occupants"]) for t in doc["tiles"]) >= net.num_layers

    def test_load_plan_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            __import__("repro.serialize", fromlist=["load_plan_dict"]).load_plan_dict(path)
