"""Tests for the benchmark harness (structure + fast shape checks)."""

import pytest

from repro.bench import (
    default_rounds,
    fig3_motivation,
    fig4_empty_crossbars,
    fig5_tradeoff,
    fig9_overall,
    fig10_ablation,
    fig11b_candidate_count,
    search_time_profile,
    table3_strategies,
    table4_tiles,
    table5_area_latency,
)
from repro.bench.reporting import format_table, format_value, normalize_series
from repro.models import lenet

FAST = dict(rounds=25, seed=0)


class TestReporting:
    def test_format_value_scales(self):
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.500"
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(2.29e10) == "2.290e+10"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2), (30, 40)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_normalize_series(self):
        assert normalize_series([2.0, 4.0]) == [1.0, 2.0]
        assert normalize_series([2.0, 4.0], to_min=False) == [0.5, 1.0]
        assert normalize_series([0.0, 0.0]) == [0.0, 0.0]

    def test_default_rounds_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RL_ROUNDS", "7")
        assert default_rounds() == 7


class TestStaticExperiments:
    def test_fig3_rows(self):
        rows = fig3_motivation()
        assert [r.label for r in rows] == [
            "32x32", "64x64", "128x128", "256x256", "512x512", "Manual-Hetero",
        ]
        assert rows[-1].rue == max(r.rue for r in rows)

    def test_fig4_structure(self):
        data = fig4_empty_crossbars()
        assert len(data) == 4
        for series in data.values():
            assert sorted(series) == [4, 8, 16, 32]
            values = [series[t] for t in sorted(series)]
            assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_fig5_pinned(self):
        rows = fig5_tradeoff()
        assert rows[0].utilization == pytest.approx(27 / 32)
        assert rows[1].utilization == pytest.approx(27 / 128)
        assert rows[0].activated_adcs == 256
        assert rows[1].activated_adcs == 128


class TestSearchExperiments:
    """Run on LeNet (fast) — the benchmarks run the full paper workloads."""

    def test_fig9_structure(self, lenet_net):
        results = fig9_overall([lenet_net], **FAST)
        assert len(results) == 1
        res = results[0]
        assert [r.label for r in res.rows][-1] == "AutoHet"
        assert len(res.rows) == 6
        assert res.rue_speedup >= 1.0  # seeded search can't lose

    def test_fig10_structure(self, lenet_net):
        results = fig10_ablation([lenet_net], **FAST)
        rows = results[0].rows
        assert [r.label for r in rows] == ["Base", "+He", "+Hy", "All"]
        assert rows[1].rue >= 0.99 * rows[0].rue  # +He >= Base (seeded)

    def test_table3_structure(self):
        data = table3_strategies(**FAST)
        assert set(data) == {"Base", "+He", "+Hy"}
        assert all(len(v) == 16 for v in data.values())
        assert len(set(data["Base"])) == 1  # homogeneous

    def test_table4_structure(self, lenet_net):
        data = table4_tiles([lenet_net], **FAST)
        row = data["LeNet"]
        assert row["All"] <= row["+Hy"]

    def test_fig11b_structure(self):
        points = fig11b_candidate_count(counts=(2, 4), **FAST)
        assert [p.label for p in points] == ["2", "4"]
        assert all(p.speedup > 0 for p in points)

    def test_table5_structure(self):
        rows = table5_area_latency(**FAST)
        assert [r.label for r in rows] == [
            "SXB32", "SXB64", "SXB128", "SXB256", "SXB512", "AutoHet",
        ]
        areas = [r.metrics.area_um2 for r in rows]
        assert areas[-1] == min(areas)  # AutoHet smallest (Table 5)

    def test_search_time_profile(self):
        result = search_time_profile(rounds=10, seed=0)
        assert result.total_seconds > 0
        assert 0 < result.simulator_fraction < 1
