"""Multi-threaded stress tests for the shared evaluation cache.

``Simulator.evaluate_many(executor="thread")`` shares one simulator —
and one :class:`EvaluationCache` — across every worker thread.  These
tests hammer that path with eight workers and a batch built to collide
(each strategy appears several times), then check the two properties the
static analyzer can only assert statically:

* the parallel results are bit-identical to the serial ones, and
* the cache counters survive without lost updates
  (``hits + misses == lookups`` and every entry is accounted for).
"""

import pytest

from repro.arch.config import DEFAULT_CANDIDATES
from repro.sim.cache import EvaluationCache
from repro.sim.simulator import Simulator

MAX_WORKERS = 8
REPEATS = 6


def strategies_for(network, count=8):
    shapes = DEFAULT_CANDIDATES
    return [
        tuple(shapes[(i + j) % len(shapes)] for j in range(network.num_layers))
        for i in range(count)
    ]


def colliding_batch(network, distinct=4, repeats=REPEATS):
    """A batch where every strategy recurs, to force concurrent hits."""
    base = strategies_for(network, count=distinct)
    return base * repeats


@pytest.mark.parametrize("net_fixture", ["tiny_net", "lenet_net"])
def test_thread_pool_matches_serial_bit_for_bit(net_fixture, request):
    network = request.getfixturevalue(net_fixture)
    batch = colliding_batch(network)
    serial = Simulator().evaluate_many(network, batch)

    threaded = Simulator().evaluate_many(
        network, batch, executor="thread", max_workers=MAX_WORKERS
    )
    assert threaded == serial


def test_cache_counters_are_consistent_under_contention(lenet_net):
    sim = Simulator()
    batch = colliding_batch(lenet_net)
    results = sim.evaluate_many(
        lenet_net, batch, executor="thread", max_workers=MAX_WORKERS
    )
    assert all(m is not None for m in results)

    stats = sim.cache_stats()
    # No lost counter updates: every lookup is either a hit or a miss,
    # and one evaluation ran per distinct strategy.
    assert stats.hits + stats.misses == stats.lookups
    assert stats.lookups == len(batch)
    distinct = len(set(batch))
    assert stats.misses == distinct
    assert stats.hits == len(batch) - distinct
    assert stats.size == distinct
    assert stats.evictions == 0


def test_warm_cache_serves_every_thread(lenet_net):
    sim = Simulator()
    batch = strategies_for(lenet_net, count=4)
    warm = sim.evaluate_many(lenet_net, batch)

    hot = sim.evaluate_many(
        lenet_net, batch * REPEATS, executor="thread", max_workers=MAX_WORKERS
    )
    assert hot == warm * REPEATS
    stats = sim.cache_stats()
    assert stats.misses == len(batch)
    assert stats.hits == stats.lookups - stats.misses


def test_concurrent_eviction_keeps_counters_consistent(lenet_net):
    # A cache smaller than the working set forces concurrent evictions.
    sim = Simulator(cache=EvaluationCache(max_size=2))
    batch = colliding_batch(lenet_net, distinct=6, repeats=4)
    serial = Simulator().evaluate_many(lenet_net, batch)

    results = sim.evaluate_many(
        lenet_net, batch, executor="thread", max_workers=MAX_WORKERS
    )
    assert results == serial
    stats = sim.cache_stats()
    assert stats.hits + stats.misses == stats.lookups
    assert stats.lookups == len(batch)
    assert stats.size <= 2
    assert stats.evictions == stats.misses - stats.size


def test_single_flight_dedupes_concurrent_misses(tiny_net, monkeypatch):
    """Concurrent misses on one key run the evaluation exactly once.

    The NumPy kernel path releases the GIL, so without the cache's
    single-flight claim protocol two threads could both miss the same
    key and evaluate it twice (the pure-Python scalar path only dodged
    this because its compute fits inside one GIL switch interval).  A
    deliberately slow evaluation makes the pre-fix race deterministic:
    every thread would miss before the first one finished.
    """
    import threading
    import time

    sim = Simulator()
    strategy = strategies_for(tiny_net, count=1)[0]
    calls = []
    original = Simulator._evaluate_impl

    def slow_impl(self, *args, **kwargs):
        calls.append(1)
        time.sleep(0.05)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(Simulator, "_evaluate_impl", slow_impl)
    results = []
    threads = [
        threading.Thread(
            target=lambda: results.append(
                sim.evaluate(tiny_net, strategy, detailed=False)
            )
        )
        for _ in range(MAX_WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(calls) == 1
    assert len(set(map(id, results))) == 1  # every thread got the one entry
    stats = sim.cache_stats()
    assert (stats.misses, stats.hits) == (1, MAX_WORKERS - 1)
    assert stats.hits + stats.misses == stats.lookups


def test_repeated_stress_rounds_stay_deterministic(tiny_net):
    batch = colliding_batch(tiny_net, distinct=3, repeats=4)
    reference = Simulator().evaluate_many(tiny_net, batch)
    for _ in range(3):
        sim = Simulator()
        assert (
            sim.evaluate_many(
                tiny_net, batch, executor="thread", max_workers=MAX_WORKERS
            )
            == reference
        )
        stats = sim.cache_stats()
        assert stats.hits + stats.misses == stats.lookups
