"""Named unit-conversion constants for the cost model.

Every cross-unit scale factor the cost path multiplies by lives here
under a name that states the conversion, with its dimension declared in
:data:`CONVERSION_UNITS`.  The dimensional analyzer
(``repro.analysis.units``, the UNI rules) treats these names as
unit-changing multipliers — ``power_nw * latency_ns * NW_NS_TO_NJ`` is
provably nanojoules — while a bare ``* 1e-9`` at the same site is an
undeclared conversion and trips UNI003.

The constants are exact powers of ten, so hoisting them out of the
arithmetic is bit-identical to the literals they replace.
"""

from __future__ import annotations

#: nW · ns → nJ: 1 nW * 1 ns = 1e-18 J = 1e-9 nJ.
NW_NS_TO_NJ = 1e-9

#: nanoseconds per second; divides into a per-ns rate to give a per-s
#: rate (``NS_PER_S / latency_ns`` = events per second).
NS_PER_S = 1e9

#: Declared dimension of each conversion constant, in the unit grammar
#: of ``repro.analysis.units`` (``*`` composes, ``/`` divides,
#: parentheses group).  The analyzer cross-checks this mapping against
#: the module: every constant here must be declared, and vice versa.
CONVERSION_UNITS: dict[str, str] = {
    "NW_NS_TO_NJ": "nJ/(nW*ns)",
    "NS_PER_S": "ns/s",
}
