"""The crossbar-configuration search environment (§3.2).

One episode walks the network's layers in order.  At step ``k`` the agent
observes the Table-1 state vector of layer ``k`` and emits an action — the
crossbar type for that layer.  When every layer has received an action the
strategy is complete (Fig. 6 step 4): the heterogeneous accelerator
simulator evaluates it and the reward ``R = u / e`` (Eq. 2) comes back as
*direct hardware feedback* (steps 5-7).  The terminal reward is broadcast
to all per-layer transitions, as the experience tuple of Eq. 3 implies.

State-vector interpretation: Table 1 lists the dynamic features ``a_k``
and ``u_k`` as "obtained from the decision stage".  Since the action of
layer ``k`` cannot be observed before it is decided, the observation for
layer ``k`` carries the *previous* decision's action and utilization
(zeros at ``k = 0``) — so that ``S_{k+1}`` contains ``a_k`` and ``u_k``
exactly as Eq. 3 requires.  All dimensions are normalised to [0, 1] by
per-network maxima.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ...analysis.checkers import check_mappings, check_network
from ...analysis.invariants import Report
from ...arch.config import CrossbarShape
from ...arch.mapping import map_layer
from ...models.graph import Network
from ...obs import metrics as obs_metrics
from ...obs.trace import Tracer
from ...sim.metrics import SystemMetrics
from ...sim.simulator import CapacityError, Simulator
from .replay import Transition

STATE_DIM = 10

#: Maps hardware feedback to a scalar reward.  Default: Eq. 2, R = u / e.
RewardFn = Callable[[SystemMetrics], float]


def reward_rue(metrics: SystemMetrics) -> float:
    """The paper's reward (Eq. 2): utilization fraction over energy (nJ)."""
    return metrics.reward


def reward_utilization(metrics: SystemMetrics) -> float:
    """Ablation reward: utilization only."""
    return metrics.utilization


def reward_energy(metrics: SystemMetrics) -> float:
    """Ablation reward: negative energy (maximise efficiency only)."""
    return -metrics.energy_nj


@dataclass
class EpisodeResult:
    """Everything one decision episode produced.

    ``metrics`` is ``None`` for an *infeasible* episode — a strategy that
    overflows the bank's tile budget.  The episode still carries its
    (penalty) reward and transitions so the agent learns to avoid the
    region instead of crashing the search.
    """

    strategy: tuple[CrossbarShape, ...]
    metrics: SystemMetrics | None
    reward: float
    transitions: list[Transition]

    @property
    def feasible(self) -> bool:
        return self.metrics is not None


class CrossbarSearchEnv:
    """Layer-by-layer crossbar-type assignment environment."""

    def __init__(
        self,
        network: Network,
        candidates: Sequence[CrossbarShape],
        simulator: Simulator | None = None,
        *,
        tile_shared: bool = True,
        reward_fn: RewardFn = reward_rue,
        infeasible_reward: float = 0.0,
        tracer: Tracer | None = None,
    ) -> None:
        if not candidates:
            raise ValueError("need at least one crossbar candidate")
        self.network = network
        self.candidates = tuple(candidates)
        self.simulator = simulator if simulator is not None else Simulator()
        # Static gate: a broken model graph or an ADC that cannot resolve
        # the candidate rows would poison every episode — reject now,
        # before the search burns simulator rollouts (NET*/CFG004 rules).
        report = Report()
        report.extend(check_network(network))
        report.raise_if_errors(f"CrossbarSearchEnv({network.name})")
        self.simulator.config.validate_for_candidates(self.candidates)
        self.tile_shared = tile_shared
        self.reward_fn = reward_fn
        # Reward of an episode whose strategy overflows the bank.  With
        # the paper's R = u / e (strictly positive), the default 0.0 is
        # below every feasible reward — a capacity breach reads as the
        # worst possible outcome without crashing the search.
        self.infeasible_reward = infeasible_reward
        #: episodes rejected for bank overflow since construction
        self.infeasible_episodes = 0
        #: episodes finished since construction (feasible or not)
        self.episodes_finished = 0
        # Explicit tracer, else resolve the simulator's (which itself
        # falls back to the ambient one) at each episode end.
        self._tracer = tracer
        self._norms = self._feature_norms()
        self._pending: list[int] = []
        self._states: list[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return self.network.num_layers

    @property
    def num_actions(self) -> int:
        return len(self.candidates)

    def action_to_shape(self, index: int) -> CrossbarShape:
        return self.candidates[index]

    def continuous_to_index(self, a: float) -> int:
        """Discretise a continuous action in [0, 1] to a candidate index.

        Equal-width bins (``floor(a * C)``), so uniform exploration noise
        reaches every candidate — including the extreme indices — with
        equal probability.
        """
        a = float(np.clip(a, 0.0, 1.0))
        return min(int(a * self.num_actions), self.num_actions - 1)

    def index_to_continuous(self, index: int) -> float:
        """The centre of the candidate's action bin."""
        return (index + 0.5) / self.num_actions

    # ------------------------------------------------------------------
    def _feature_norms(self) -> np.ndarray:
        """Per-dimension maxima for [0, 1] normalisation."""
        layers = self.network.layers
        norms = np.ones(STATE_DIM)
        norms[0] = max(len(layers) - 1, 1)                       # k
        norms[1] = 1.0                                            # t
        norms[2] = max(l.in_channels for l in layers)             # inc
        norms[3] = max(l.out_channels for l in layers)            # outc
        norms[4] = max(l.kernel_elems for l in layers)            # ks
        norms[5] = max(l.stride for l in layers)                  # s
        norms[6] = max(l.weight_count for l in layers)            # w
        norms[7] = max(l.input_size for l in layers)              # ins
        norms[8] = 1.0                                            # a (already [0,1])
        norms[9] = 1.0                                            # u (already [0,1])
        return norms

    def observe(self, layer_index: int, prev_action: float, prev_util: float) -> np.ndarray:
        """Build the normalised 10-dim state vector for one layer."""
        layer = self.network.layers[layer_index]
        raw = np.array(
            [
                layer.index,
                layer.layer_type.state_code,
                layer.in_channels,
                layer.out_channels,
                layer.kernel_elems,
                layer.stride,
                layer.weight_count,
                layer.input_size,
                prev_action,
                prev_util,
            ],
            dtype=np.float64,
        )
        return raw / self._norms

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start a new episode; returns the observation for layer 0."""
        self._pending = []
        self._states = [self.observe(0, 0.0, 0.0)]
        return self._states[0]

    def step(self, action_index: int) -> tuple[np.ndarray | None, bool]:
        """Assign a crossbar type to the current layer.

        Returns ``(next_state, done)``; ``next_state`` is ``None`` once
        all layers are decided (call :meth:`finish` to get the reward).
        """
        if not self._states:
            raise RuntimeError("call reset() before step()")
        if not 0 <= action_index < self.num_actions:
            raise ValueError(f"action index {action_index} out of range")
        k = len(self._pending)
        if k >= self.num_layers:
            raise RuntimeError("episode already complete")
        self._pending.append(action_index)
        shape = self.candidates[action_index]
        util_k = map_layer(self.network.layers[k], shape).utilization
        done = len(self._pending) == self.num_layers
        # The successor observation (for layer k+1, or the terminal
        # pseudo-state repeating the last layer) carries a_k and u_k.
        next_layer = min(k + 1, self.num_layers - 1)
        next_state = self.observe(
            next_layer, self.index_to_continuous(action_index), util_k
        )
        self._states.append(next_state)
        return (None if done else next_state), done

    def finish(self) -> EpisodeResult:
        """Evaluate the completed strategy and build the transitions."""
        if len(self._pending) != self.num_layers:
            raise RuntimeError("episode not complete")
        strategy = tuple(self.candidates[i] for i in self._pending)
        # Validate the mapped plan statically before handing it to the
        # simulator: an Eq. 4 breach (MAP001-MAP003) means corrupt mapping
        # arithmetic, and feedback computed from it would train the agent
        # on garbage.  The map_layer results are lru-cached, so this costs
        # arithmetic only.
        mappings = [
            map_layer(layer, shape)
            for layer, shape in zip(self.network.layers, strategy)
        ]
        report = Report()
        report.extend(check_mappings(mappings))
        report.raise_if_errors(f"episode strategy on {self.network.name}")
        try:
            metrics = self.simulator.evaluate(
                self.network, strategy, tile_shared=self.tile_shared, detailed=False
            )
        except CapacityError:
            # An over-budget strategy is a legitimate point of the search
            # space, not a bug: emit a penalty episode so the agent steers
            # away from it (and the search survives).
            metrics = None
            self.infeasible_episodes += 1
            reward = self.infeasible_reward
        else:
            reward = self.reward_fn(metrics)
        self.episodes_finished += 1
        tracer = (
            self._tracer
            if self._tracer is not None
            else self.simulator.effective_tracer
        )
        if tracer.enabled:
            obs_metrics.emit_episode(
                tracer,
                index=self.episodes_finished,
                reward=reward,
                feasible=metrics is not None,
                network=self.network.name,
                utilization=None if metrics is None else metrics.utilization,
                occupied_tiles=None if metrics is None else metrics.occupied_tiles,
            )
        transitions = [
            Transition(
                state=self._states[k],
                next_state=self._states[k + 1],
                action=self.index_to_continuous(self._pending[k]),
                reward=reward,
                done=(k == self.num_layers - 1),
            )
            for k in range(self.num_layers)
        ]
        return EpisodeResult(strategy, metrics, reward, transitions)

    # ------------------------------------------------------------------
    def rollout(self, policy: Callable[[np.ndarray], int]) -> EpisodeResult:
        """Run one full episode under an index-valued policy."""
        state = self.reset()
        done = False
        while not done:
            action = policy(state)
            state, done = self.step(action)
        return self.finish()

    def evaluate_indices(self, indices: Sequence[int]) -> EpisodeResult:
        """Score a fixed strategy expressed as candidate indices."""
        if len(indices) != self.num_layers:
            raise ValueError("need one index per layer")
        self.reset()
        for idx in indices:
            self.step(idx)
        return self.finish()
