"""Static verification of configs, mappings, model graphs, and plans.

``repro.analysis`` rejects invalid artifacts *before* anything expensive
runs — an RL search must not burn simulator episodes on a plan that
violates Eq. 4 bounds or Algorithm 1's accounting.  Three layers:

* :mod:`repro.analysis.invariants` — the rule registry, `Diagnostic`
  results, and the shared scalar rule implementations that
  construction-time validation (``arch/config.py``) reuses.
* :mod:`repro.analysis.checkers` — structural checks over
  `HardwareConfig`, `CrossbarShape` candidate sets, `LayerMapping`,
  `Network` graphs, and allocation plans (object- and dict-level).
* :mod:`repro.analysis.lint` — project-specific AST lint rules for the
  source tree itself.
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.dataflow` — the
  interprocedural cache-key soundness and purity analysis behind
  ``repro check --cache-safety`` (CAC/PUR rule families).
* :mod:`repro.analysis.numeric` — NumPy-aware numeric-safety pass over
  ``sim/`` behind ``repro check --numeric`` (NUM rule family).
* :mod:`repro.analysis.kernel_parity` — scalar-vs-vectorized read-set
  parity behind ``repro check --kernel-parity`` (PAR rule family).
* :mod:`repro.analysis.units` — dimensional analysis of the cost model
  behind ``repro check --units`` (UNI rule family).

``repro check`` (see :mod:`repro.cli`) drives all three and exits
nonzero on ERROR diagnostics; `docs/static_analysis.md` catalogues every
rule id with its paper anchor.

Only :mod:`~repro.analysis.invariants` names are imported eagerly here —
it is dependency-free, so ``arch/config.py`` can import it during its own
module initialisation without a cycle.  The checker/lint entry points are
provided lazily via module ``__getattr__``.
"""

from __future__ import annotations

from typing import Any

from .invariants import (
    RULES,
    Diagnostic,
    InvariantViolation,
    Report,
    Rule,
    Severity,
    rule,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "InvariantViolation",
    "Report",
    "Rule",
    "Severity",
    "rule",
    # lazy (see __getattr__):
    "check_allocation",
    "check_candidate_set",
    "check_config",
    "check_config_dict",
    "check_mapping",
    "check_mappings",
    "check_network",
    "check_plan_dict",
    "check_shape",
    "lint_source",
    "lint_tree",
    "analyze_cache_safety",
    "analyze_memoized",
    "analyze_concurrency",
    "analyze_concurrency_tree",
    "analyze_numeric",
    "numeric_findings",
    "analyze_kernel_parity",
    "analyze_kernel_parity_tree",
    "kernel_parity_contract",
    "analyze_units",
    "units_findings",
]

_CHECKER_NAMES = frozenset(
    {
        "check_allocation",
        "check_candidate_set",
        "check_config",
        "check_config_dict",
        "check_mapping",
        "check_mappings",
        "check_network",
        "check_plan_dict",
        "check_shape",
    }
)
_LINT_NAMES = frozenset({"lint_source", "lint_tree", "lint_path"})
_DATAFLOW_NAMES = frozenset(
    {"analyze_cache_safety", "analyze_memoized", "simulator_contract"}
)
_CONCURRENCY_NAMES = frozenset(
    {"analyze_concurrency", "analyze_concurrency_tree", "concurrency_contract"}
)
_NUMERIC_NAMES = frozenset({"analyze_numeric", "numeric_findings"})
_KERNEL_PARITY_NAMES = frozenset(
    {
        "analyze_kernel_parity",
        "analyze_kernel_parity_tree",
        "kernel_parity_contract",
        "ParityContract",
    }
)
_UNITS_NAMES = frozenset(
    {"analyze_units", "units_findings", "load_tables", "UnitTables"}
)


def __getattr__(name: str) -> Any:
    if name in _CHECKER_NAMES:
        from . import checkers

        return getattr(checkers, name)
    if name in _LINT_NAMES:
        from . import lint

        return getattr(lint, name)
    if name in _DATAFLOW_NAMES:
        from . import dataflow

        return getattr(dataflow, name)
    if name in _CONCURRENCY_NAMES:
        from . import concurrency

        return getattr(concurrency, name)
    if name in _NUMERIC_NAMES:
        from . import numeric

        return getattr(numeric, name)
    if name in _KERNEL_PARITY_NAMES:
        from . import kernel_parity

        return getattr(kernel_parity, name)
    if name in _UNITS_NAMES:
        from . import units

        return getattr(units, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
