"""Tests for the simulated-annealing baseline."""

import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES
from repro.core.search import (
    AnnealingSchedule,
    best_homogeneous,
    simulated_annealing,
)
from repro.models import lenet
from repro.sim import Simulator


class TestSchedule:
    def test_defaults_valid(self):
        AnnealingSchedule()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(min_temperature=0)


class TestSearch:
    def test_returns_valid_strategy(self, lenet_net, simulator):
        strategy, metrics = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=30, seed=0
        )
        assert len(strategy) == lenet_net.num_layers
        assert set(strategy) <= set(DEFAULT_CANDIDATES)
        assert metrics.reward > 0

    def test_never_worse_than_best_uniform(self, lenet_net, simulator):
        """The start point is the best uniform strategy; best-tracking
        guarantees we never return below it."""
        strategy, metrics = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=20, seed=1
        )
        for cand in DEFAULT_CANDIDATES:
            uniform = simulator.evaluate(
                lenet_net,
                tuple(cand for _ in lenet_net.layers),
                tile_shared=True,
                detailed=False,
            )
            assert metrics.reward >= uniform.reward

    def test_deterministic_by_seed(self, lenet_net, simulator):
        a = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=25, seed=4
        )
        b = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=25, seed=4
        )
        assert a[0] == b[0]
        assert a[1].reward == b[1].reward

    def test_more_rounds_never_worse(self, lenet_net, simulator):
        few = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=5, seed=2
        )
        # Same seed: the first 5 proposals are a prefix, and best-tracking
        # is monotone over proposals.
        many = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=60, seed=2
        )
        assert many[1].reward >= few[1].reward

    def test_rejects_bad_args(self, lenet_net):
        with pytest.raises(ValueError):
            simulated_annealing(lenet_net, DEFAULT_CANDIDATES, rounds=0)
        with pytest.raises(ValueError):
            simulated_annealing(lenet_net, (), rounds=5)

    def test_single_candidate_degenerates_to_uniform(self, lenet_net, simulator):
        only = (CrossbarShape(72, 64),)
        strategy, _ = simulated_annealing(
            lenet_net, only, simulator, rounds=5, seed=0
        )
        assert set(strategy) == set(only)

    def test_tile_shared_flag(self, lenet_net, simulator):
        _, shared = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=10,
            tile_shared=True, seed=0,
        )
        _, unshared = simulated_annealing(
            lenet_net, DEFAULT_CANDIDATES, simulator, rounds=10,
            tile_shared=False, seed=0,
        )
        assert shared.tile_shared and not unshared.tile_shared
