"""Tests for the tile-based baseline allocator, incl. Fig. 4/5 pins."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape
from repro.arch.mapping import map_layer
from repro.core.allocation import (
    allocate_tile_based,
    layer_empty_fraction,
    layer_tiles_needed,
)
from repro.models import vgg16
from repro.models.layers import LayerSpec


class TestPaperPins:
    def test_fig5_utilization_with_tiles(self):
        """27/32 on 64x64 vs 27/128 on 128x128 (4-crossbar tiles)."""
        layer = LayerSpec.conv(12, 128, 3, input_size=8)
        m64 = map_layer(layer, CrossbarShape(64, 64))
        m128 = map_layer(layer, CrossbarShape(128, 128))
        assert allocate_tile_based([m64], 4).utilization == pytest.approx(27 / 32)
        assert allocate_tile_based([m128], 4).utilization == pytest.approx(27 / 128)

    def test_section_2_2_2_small_layer_wastage(self):
        """A one-crossbar layer on a 4-slot tile wastes 75% (§2.2.2)."""
        layer = LayerSpec.conv(3, 4, 3, input_size=8)
        mapping = map_layer(layer, CrossbarShape(64, 64))
        assert mapping.num_crossbars == 1
        assert layer_empty_fraction(mapping, 4) == pytest.approx(0.75)

    def test_section_2_2_2_five_crossbar_layer(self):
        """A five-crossbar layer gets two tiles: 3/8 = 37.5% waste."""
        # Cin=35, k=3 -> ceil(35/7)=5 row groups of one column group.
        layer = LayerSpec.conv(35, 64, 3, input_size=8)
        mapping = map_layer(layer, CrossbarShape(64, 64))
        assert mapping.num_crossbars == 5
        assert layer_tiles_needed(mapping, 4) == 2
        assert layer_empty_fraction(mapping, 4) == pytest.approx(3 / 8)

    def test_fig4_waste_grows_with_tile_size(self):
        """Fig. 4: empty-crossbar share rises with crossbars per tile."""
        net = vgg16()
        for layer in net.layers[:4]:
            mapping = map_layer(layer, CrossbarShape(64, 64))
            fractions = [
                layer_empty_fraction(mapping, ts) for ts in (4, 8, 16, 32)
            ]
            assert all(
                a <= b + 1e-12 for a, b in zip(fractions, fractions[1:])
            )

    def test_fig4_average_magnitudes(self):
        """Paper: ~24% average waste at 4 XBs/tile, rising toward ~60%."""
        net = vgg16()
        mappings = [
            map_layer(l, CrossbarShape(64, 64)) for l in net.layers[:4]
        ]
        avg4 = sum(layer_empty_fraction(m, 4) for m in mappings) / 4
        avg32 = sum(layer_empty_fraction(m, 32) for m in mappings) / 4
        assert 0.1 < avg4 < 0.4
        assert avg32 > avg4
        assert avg32 > 0.45


class TestAllocator:
    def test_tiles_are_single_layer(self):
        layers = [
            LayerSpec.conv(16, 16, 3, input_size=8).with_index(0),
            LayerSpec.conv(16, 16, 3, input_size=8).with_index(1),
        ]
        mappings = [map_layer(l, CrossbarShape(64, 64)) for l in layers]
        alloc = allocate_tile_based(mappings, 4)
        for tile in alloc.tiles:
            assert len(tile.occupants) == 1

    def test_tile_count_is_roundup(self):
        layer = LayerSpec.conv(35, 64, 3, input_size=8).with_index(0)
        mapping = map_layer(layer, CrossbarShape(64, 64))
        alloc = allocate_tile_based([mapping], 4)
        assert alloc.occupied_tiles == math.ceil(mapping.num_crossbars / 4)

    def test_rejects_nonpositive_capacity(self):
        layer = LayerSpec.fc(8, 8).with_index(0)
        with pytest.raises(ValueError):
            allocate_tile_based([map_layer(layer, CrossbarShape(32, 32))], 0)

    def test_heterogeneous_strategies_get_separate_tiles(self):
        layers = [
            LayerSpec.conv(16, 16, 3, input_size=8).with_index(0),
            LayerSpec.fc(64, 64).with_index(1),
        ]
        mappings = [
            map_layer(layers[0], CrossbarShape(32, 32)),
            map_layer(layers[1], CrossbarShape(64, 64)),
        ]
        alloc = allocate_tile_based(mappings, 4)
        shapes = {t.shape for t in alloc.tiles}
        assert shapes == {CrossbarShape(32, 32), CrossbarShape(64, 64)}

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 64), st.integers(1, 128), st.sampled_from([1, 3])
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 16),
    )
    def test_all_blocks_placed_property(self, layer_dims, capacity):
        layers = [
            LayerSpec.conv(cin, cout, k, input_size=8).with_index(i)
            for i, (cin, cout, k) in enumerate(layer_dims)
        ]
        mappings = [map_layer(l, CrossbarShape(64, 64)) for l in layers]
        alloc = allocate_tile_based(mappings, capacity)
        alloc.validate()  # includes full placement + capacity invariants
        assert alloc.occupied_tiles == sum(
            math.ceil(m.num_crossbars / capacity) for m in mappings
        )
