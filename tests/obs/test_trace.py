"""Unit tests for the tracing primitives, sinks and rollups.

The tracer is driven with a fake monotonic clock throughout, so every
duration assertion is exact — no sleeps, no tolerance bands.
"""

import json
import logging
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    RECORD_TYPES,
    SCHEMA_VERSION,
    Tracer,
    current_tracer,
    set_ambient_tracer,
    summarize_jsonl,
    summarize_records,
    use_tracer,
    validate_record,
)
from repro.obs.sinks import InMemorySink, JsonlSink, LoggingSink
from repro.obs.summary import percentile, read_jsonl


class FakeClock:
    """Deterministic nanosecond clock: advance() between reads."""

    def __init__(self) -> None:
        self.now = 1_000

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


@pytest.fixture
def traced():
    sink = InMemorySink()
    clock = FakeClock()
    return Tracer([sink], clock=clock), sink, clock


class TestTracerPrimitives:
    def test_span_records_duration_and_depth(self, traced):
        tracer, sink, clock = traced
        with tracer.span("outer", network="vgg16"):
            clock.advance(50)
            with tracer.span("inner"):
                clock.advance(7)
        inner, outer = sink.records  # inner closes first
        assert inner["name"] == "inner"
        assert inner["dur_ns"] == 7 and inner["depth"] == 1
        assert "attrs" not in inner
        assert outer["dur_ns"] == 57 and outer["depth"] == 0
        assert outer["attrs"] == {"network": "vgg16"}

    def test_start_ns_is_epoch_relative(self, traced):
        tracer, sink, clock = traced
        clock.advance(500)
        with tracer.span("s"):
            pass
        assert sink.records[0]["start_ns"] == 500

    def test_seq_is_monotonic_across_record_types(self, traced):
        tracer, sink, _ = traced
        tracer.event("e")
        tracer.counter("c", 1.0)
        with tracer.span("s"):
            pass
        assert [r["seq"] for r in sink.records] == [0, 1, 2]

    def test_span_failure_marks_error_and_propagates(self, traced):
        tracer, sink, _ = traced
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        assert sink.records[0]["error"] is True

    def test_every_record_validates(self, traced):
        tracer, sink, clock = traced
        tracer.event("e", key="value", flag=True, nothing=None)
        tracer.counter("c", 3.5, layer=2)
        with tracer.span("s", shape="64x64"):
            clock.advance(1)
        for record in sink.records:
            assert validate_record(record) == []
            assert record["v"] == SCHEMA_VERSION
            assert record["type"] in RECORD_TYPES

    def test_span_stacks_are_thread_local(self, traced):
        tracer, sink, _ = traced
        depths: list[int] = []

        def worker():
            with tracer.span("t"):
                pass

        with tracer.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        depths = [r["depth"] for r in sink.records]
        # The worker's span does not see main's open span on its stack.
        assert depths == [0, 0]


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert Tracer([]).enabled is True
        with NULL_TRACER.span("s", anything=1):
            NULL_TRACER.event("e")
            NULL_TRACER.counter("c", 1)
        NULL_TRACER.flush()  # no-op, no error

    def test_null_span_is_a_shared_singleton(self):
        assert NullTracer().span("a") is NULL_TRACER.span("b")


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        t = Tracer([])
        assert current_tracer() is NULL_TRACER
        with use_tracer(t) as active:
            assert active is t
            assert current_tracer() is t
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_error(self):
        t = Tracer([])
        with pytest.raises(ValueError):
            with use_tracer(t):
                raise ValueError
        assert current_tracer() is NULL_TRACER

    def test_set_ambient_none_resets_to_null(self):
        previous = set_ambient_tracer(Tracer([]))
        try:
            assert current_tracer() is not NULL_TRACER
            set_ambient_tracer(None)
            assert current_tracer() is NULL_TRACER
        finally:
            set_ambient_tracer(previous)


class TestSinks:
    def test_in_memory_snapshot_and_clear(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        tracer.event("a")
        snapshot = sink.records
        tracer.event("b")
        assert len(snapshot) == 1 and len(sink) == 2
        sink.clear()
        assert len(sink) == 0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = FakeClock()
        with JsonlSink(path) as sink:
            tracer = Tracer([sink], clock=clock)
            with tracer.span("s", network="lenet"):
                clock.advance(10)
            tracer.counter("c", 2.5)
            tracer.flush()
            assert sink.emitted == 2
        records = list(read_jsonl(path))
        assert [r["type"] for r in records] == ["span", "counter"]
        assert all(validate_record(r) == [] for r in records)
        assert records[0]["dur_ns"] == 10

    def test_jsonl_lazy_open_and_append(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # nothing touched until first emit
        sink.emit({"v": 1, "type": "event", "name": "a", "seq": 0})
        sink.close()
        with JsonlSink(path, append=True) as more:
            more.emit({"v": 1, "type": "event", "name": "b", "seq": 1})
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]

    def test_logging_sink_emits_debug_records(self, caplog):
        sink = LoggingSink()
        with caplog.at_level(logging.DEBUG, logger="repro.trace"):
            sink.emit({"v": 1, "type": "event", "name": "cache.hit", "seq": 0})
        assert "cache.hit" in caplog.text
        # The record itself is embedded as parseable JSON.
        payload = caplog.records[0].args[2]
        assert json.loads(payload)["name"] == "cache.hit"


class TestSummary:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.50) == 20.0
        assert percentile(values, 0.95) == 40.0
        assert percentile([5.0], 0.95) == 5.0
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_rollup_math(self):
        sink = InMemorySink()
        clock = FakeClock()
        tracer = Tracer([sink], clock=clock)
        for dur in (10, 20, 30):
            with tracer.span("work"):
                clock.advance(dur)
        tracer.counter("util", 0.5)
        tracer.counter("util", 0.7)
        tracer.event("hit")
        tracer.event("hit")
        tracer.event("miss")
        summary = sink.summary()
        work = summary.spans["work"]
        assert (work.count, work.total_ns, work.max_ns) == (3, 60, 30)
        assert work.p50_ns == 20.0 and work.p95_ns == 30.0
        util = summary.counters["util"]
        assert util.count == 2 and util.mean == pytest.approx(0.6)
        assert (util.minimum, util.maximum, util.last) == (0.5, 0.7, 0.7)
        assert summary.events == {"hit": 2, "miss": 1}
        assert summary.records == 8 and summary.invalid == 0
        assert summary.span_total_ns() == 60

    def test_invalid_records_counted_not_fatal(self):
        good = {"v": 1, "type": "event", "name": "ok", "seq": 0}
        bad = {"v": 1, "type": "event", "seq": "x"}
        summary = summarize_records([good, bad, ["not a dict"]])
        assert summary.records == 3 and summary.invalid == 2
        assert summary.events == {"ok": 1}

    def test_summarize_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            Tracer([sink]).event("e")
        summary = summarize_jsonl(path)
        assert summary.events == {"e": 1} and summary.invalid == 0


class TestValidateRecord:
    def test_unknown_type(self):
        assert validate_record({"v": 1, "type": "gauge", "name": "x", "seq": 0})

    def test_unknown_field(self):
        problems = validate_record(
            {"v": 1, "type": "event", "name": "x", "seq": 0, "bogus": 1}
        )
        assert any("bogus" in p for p in problems)

    def test_wrong_version(self):
        problems = validate_record({"v": 99, "type": "event", "name": "x", "seq": 0})
        assert any("version" in p for p in problems)

    def test_negative_duration_rejected(self):
        record = {
            "v": 1, "type": "span", "name": "s", "seq": 0,
            "start_ns": 0, "dur_ns": -5, "depth": 0,
        }
        assert any("dur_ns" in p for p in validate_record(record))

    def test_non_finite_counter_rejected(self):
        record = {"v": 1, "type": "counter", "name": "c", "seq": 0,
                  "value": float("nan")}
        assert any("finite" in p for p in validate_record(record))

    def test_non_scalar_attr_rejected(self):
        record = {"v": 1, "type": "event", "name": "e", "seq": 0,
                  "attrs": {"shape": [64, 64]}}
        assert any("non-scalar" in p for p in validate_record(record))
