#!/usr/bin/env python3
"""Bit-exact inference through the mapped crossbars, with fault injection.

The analytic simulator costs configurations out; this example *computes*
through them.  It programs a quantized LeNet onto the crossbar array an
AutoHet search picked, runs an image through the bit-serial / bit-sliced
pipeline, and shows:

1. the crossbar output matches a float reference to quantization error;
2. per-layer MVMs through the physical PE/tile object model are integer-
   exact;
3. what happens when ReRAM cells misbehave (conductance variation and
   stuck-at faults — the extension model in ``repro.sim.variation``).

Run:  python examples/functional_inference.py
"""

import numpy as np

from repro import CrossbarShape, FunctionalNetworkEngine, lenet
from repro.sim.functional import FunctionalLayerEngine, unfold_weights
from repro.sim.quantization import quantize
from repro.sim.variation import VariationModel, inject_faults, relative_output_error


def main() -> None:
    network = lenet()
    strategy = tuple(CrossbarShape(72, 64) for _ in network.layers)

    print("Programming quantized LeNet onto 72x64 crossbars...")
    engine = FunctionalNetworkEngine(network, strategy, seed=7)
    image = network.dataset.synthetic_batch(1, seed=11)[0]

    logits = engine.forward(image)
    reference = engine.reference_forward(image)
    rel_err = np.abs(logits - reference).max() / np.abs(reference).max()
    counters = engine.counters()
    print(f"  crossbar logits:  {np.round(logits, 3)}")
    print(f"  float reference:  {np.round(reference, 3)}")
    print(f"  max relative quantization error: {rel_err:.3%}")
    print(
        f"  activity: {counters.adc_conversions:,} ADC conversions, "
        f"{counters.crossbar_evaluations:,} analog evaluations, "
        f"{counters.adc_saturations} ADC saturations"
    )

    print("\nDevice non-idealities (conductance variation):")
    layer = network.layers[1]
    rng = np.random.default_rng(0)
    x = rng.integers(0, 256, size=(16, layer.in_channels * layer.kernel_elems))
    wq = quantize(
        unfold_weights(layer, engine.weights[layer.index]), 8, signed=True
    ).values
    for sigma in (0.0, 0.3, 0.6, 1.0):
        faulty = FunctionalLayerEngine(layer, CrossbarShape(72, 64), wq)
        model = VariationModel(conductance_sigma=sigma, seed=3)
        counts = inject_faults(faulty, model)
        err = relative_output_error(faulty, wq, x)
        print(
            f"  sigma={sigma:.1f}: flip prob {model.flip_probability:6.2%}, "
            f"{counts['flipped']:5d} cells flipped, output RMS error {err:6.2%}"
        )

    print("\nStuck-at faults:")
    for frac in (0.001, 0.01, 0.05):
        faulty = FunctionalLayerEngine(layer, CrossbarShape(72, 64), wq)
        counts = inject_faults(
            faulty, VariationModel(stuck_at_on=frac / 2, stuck_at_off=frac / 2, seed=5)
        )
        err = relative_output_error(faulty, wq, x)
        print(
            f"  {frac:5.1%} faulty cells -> output RMS error {err:6.2%} "
            f"({counts['stuck_on']} stuck-on, {counts['stuck_off']} stuck-off)"
        )


if __name__ == "__main__":
    main()
