"""Algorithm 1 (tile-shared remapping) — pinned examples and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape
from repro.arch.mapping import map_layer
from repro.core.allocation import (
    allocate_tile_based,
    apply_tile_sharing,
    plan_tile_sharing,
)
from repro.core.allocation.tiles import Tile
from repro.models import vgg16
from repro.models.layers import LayerSpec


def make_tiles(empties, capacity=4):
    """Build one-layer-per-tile toy tiles with the given empty counts."""
    tiles = []
    for i, empty in enumerate(empties):
        t = Tile(i, CrossbarShape(32, 32), capacity)
        occupied = capacity - empty
        if occupied:
            t.add(i, occupied)
        tiles.append(t)
    return tiles


class TestPlanPinnedCases:
    def test_fig8_example(self):
        """Three tiles with one layer each (3 empty slots apiece on
        4-slot tiles) collapse onto a single tile (Fig. 8)."""
        tiles = make_tiles([3, 3, 2])
        plan = plan_tile_sharing(tiles, 4)
        absorbed = {t for v in plan.values() for t in v}
        assert len(absorbed) == 2  # two tiles released

    def test_no_merge_when_all_full(self):
        assert plan_tile_sharing(make_tiles([0, 0, 0]), 4) == {}

    def test_no_merge_when_condition_never_met(self):
        # 1 + 1 < 4 and 1 + 2 < 4: nothing combines.
        assert plan_tile_sharing(make_tiles([1, 1, 2]), 4) == {}

    def test_exact_fit_merges(self):
        # head.empty + tail.empty == capacity triggers (the >= in line 8).
        plan = plan_tile_sharing(make_tiles([1, 3]), 4)
        assert sum(len(v) for v in plan.values()) == 1

    def test_single_tile_noop(self):
        assert plan_tile_sharing(make_tiles([2]), 4) == {}

    def test_empty_list_noop(self):
        assert plan_tile_sharing([], 4) == {}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            plan_tile_sharing(make_tiles([1]), 0)

    def test_fullest_tile_absorbs_emptiest(self):
        tiles = make_tiles([1, 3])
        plan = plan_tile_sharing(tiles, 4)
        # Head (1 empty = fullest) absorbs tail (3 empty = emptiest).
        assert plan == {0: [1]}

    def test_chain_absorption_updates_head_budget(self):
        # head empty=2 absorbs a 4-empty (all-free would not be in list,
        # so use occupied=1 tiles): empties [2, 3, 3] cap 4:
        # 2+3>=4 -> head empty becomes 1; 1+3 == 4 -> absorbs again.
        plan = plan_tile_sharing(make_tiles([2, 3, 3]), 4)
        assert sum(len(v) for v in plan.values()) == 2


class TestApplyOnNetworks:
    @pytest.mark.parametrize("shape", [CrossbarShape(64, 64), CrossbarShape(576, 512)])
    def test_vgg16_properties(self, shape):
        net = vgg16()
        mappings = [map_layer(l, shape) for l in net.layers]
        base = allocate_tile_based(mappings, 4)
        shared = apply_tile_sharing(base)
        shared.validate()
        assert shared.occupied_tiles <= base.occupied_tiles
        assert shared.utilization >= base.utilization
        assert shared.weight_cells == base.weight_cells

    def test_comb_map_tiles_are_released(self):
        net = vgg16()
        mappings = [map_layer(l, CrossbarShape(576, 512)) for l in net.layers]
        base = allocate_tile_based(mappings, 4)
        shared = apply_tile_sharing(base)
        surviving = {t.tile_id for t in shared.tiles}
        for head, tails in shared.comb_map.items():
            assert head in surviving
            for tail in tails:
                assert tail not in surviving

    def test_absorber_records_absorbed_ids(self):
        net = vgg16()
        mappings = [map_layer(l, CrossbarShape(576, 512)) for l in net.layers]
        shared = apply_tile_sharing(allocate_tile_based(mappings, 4))
        by_id = {t.tile_id: t for t in shared.tiles}
        for head, tails in shared.comb_map.items():
            assert set(by_id[head].absorbed) == set(tails)

    def test_sharing_never_mixes_shapes(self):
        net = vgg16()
        strategy = [
            CrossbarShape(576, 512) if i % 2 else CrossbarShape(288, 256)
            for i in range(net.num_layers)
        ]
        mappings = [map_layer(l, s) for l, s in zip(net.layers, strategy)]
        shared = apply_tile_sharing(allocate_tile_based(mappings, 4))
        by_index = {m.layer.index: m for m in mappings}
        for tile in shared.tiles:
            for layer_index in tile.occupants:
                assert by_index[layer_index].shape == tile.shape


@st.composite
def tile_groups(draw):
    capacity = draw(st.integers(1, 8))
    empties = draw(
        st.lists(st.integers(0, capacity - 1), min_size=0, max_size=30)
    )
    return empties, capacity


class TestAlgorithmProperties:
    @settings(max_examples=100, deadline=None)
    @given(tile_groups())
    def test_plan_preserves_total_occupancy(self, group):
        """Merges move crossbars; they never create or destroy them."""
        empties, capacity = group
        tiles = make_tiles(empties, capacity)
        total_before = sum(t.occupied for t in tiles)
        plan = plan_tile_sharing(tiles, capacity)
        absorbed = {t for v in plan.values() for t in v}
        by_id = {t.tile_id: t for t in tiles}
        # Simulate: absorbers gain exactly what the absorbed lose.
        gained = sum(by_id[t].occupied for t in absorbed)
        kept = sum(t.occupied for t in tiles if t.tile_id not in absorbed)
        assert kept + gained == total_before

    @settings(max_examples=100, deadline=None)
    @given(tile_groups())
    def test_no_absorber_overflows(self, group):
        """Every absorber ends at or under capacity."""
        empties, capacity = group
        tiles = make_tiles(empties, capacity)
        plan = plan_tile_sharing(tiles, capacity)
        by_id = {t.tile_id: t for t in tiles}
        for head, tails in plan.items():
            load = by_id[head].occupied + sum(by_id[t].occupied for t in tails)
            assert load <= capacity

    @settings(max_examples=100, deadline=None)
    @given(tile_groups())
    def test_absorbed_tiles_are_distinct(self, group):
        empties, capacity = group
        plan = plan_tile_sharing(make_tiles(empties, capacity), capacity)
        absorbed = [t for v in plan.values() for t in v]
        assert len(absorbed) == len(set(absorbed))
        assert not (set(absorbed) & set(plan))  # absorbers never absorbed

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 48), st.integers(1, 96)),
            min_size=1,
            max_size=10,
        ),
        st.integers(1, 8),
    )
    def test_apply_invariants_on_random_networks(self, dims, capacity):
        layers = [
            LayerSpec.conv(cin, cout, 3, input_size=8).with_index(i)
            for i, (cin, cout) in enumerate(dims)
        ]
        mappings = [map_layer(l, CrossbarShape(64, 64)) for l in layers]
        base = allocate_tile_based(mappings, capacity)
        shared = apply_tile_sharing(base)
        shared.validate()
        assert shared.occupied_tiles <= base.occupied_tiles
        assert shared.utilization >= base.utilization - 1e-12
        # Released tile count equals the comb_map total.
        released = sum(len(v) for v in shared.comb_map.values())
        assert base.occupied_tiles - shared.occupied_tiles == released
