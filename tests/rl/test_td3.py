"""Tests for the TD3-style twin-critic extension agent."""

import numpy as np
import pytest

from repro.core.autohet import AutoHet
from repro.core.rl.ddpg import DDPGAgent
from repro.core.rl.replay import Transition
from repro.core.rl.td3 import TD3Agent, TD3Config
from repro.models import lenet


def make_agent(**overrides):
    defaults = dict(
        state_dim=4, hidden=(16, 16), seed=0, warmup_episodes=0,
        batch_size=16, updates_per_episode=10,
        coherent_episode_prob=0.0, epsilon=0.0,
    )
    defaults.update(overrides)
    return TD3Agent(TD3Config(**defaults))


def feed_episodes(agent, n=5, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        transitions = []
        states = [rng.uniform(0, 1, 4) for _ in range(5)]
        reward = float(rng.uniform(0.2, 1.0))
        for k in range(4):
            transitions.append(
                Transition(states[k], states[k + 1],
                           float(rng.uniform(0, 1)), reward, k == 3)
            )
        agent.observe_episode(transitions)


class TestConstruction:
    def test_has_twin_critics(self):
        agent = make_agent()
        assert agent.critic2 is not agent.critic
        # Independently initialised.
        assert not np.allclose(
            agent.critic.weights[0], agent.critic2.weights[0]
        )

    def test_is_a_ddpg_agent(self):
        assert isinstance(make_agent(), DDPGAgent)

    def test_config_inherits_ddpg_fields(self):
        cfg = TD3Config(policy_delay=3, gamma=0.9)
        assert cfg.policy_delay == 3
        assert cfg.gamma == 0.9


class TestUpdates:
    def test_learn_updates_both_critics(self):
        agent = make_agent()
        feed_episodes(agent)
        w1 = agent.critic.weights[0].copy()
        w2 = agent.critic2.weights[0].copy()
        agent.learn()
        assert not np.allclose(agent.critic.weights[0], w1)
        assert not np.allclose(agent.critic2.weights[0], w2)

    def test_policy_delay_skips_actor_updates(self):
        agent = make_agent(policy_delay=1000, updates_per_episode=5)
        feed_episodes(agent)
        aw = [w.copy() for w in agent.actor.weights]
        agent.learn()
        assert all(
            np.array_equal(a, b) for a, b in zip(aw, agent.actor.weights)
        )

    def test_actor_updates_at_delay_boundary(self):
        agent = make_agent(policy_delay=2, updates_per_episode=4)
        feed_episodes(agent)
        aw = [w.copy() for w in agent.actor.weights]
        agent.learn()
        assert any(
            not np.array_equal(a, b) for a, b in zip(aw, agent.actor.weights)
        )

    def test_bootstrap_uses_min_of_targets(self):
        agent = make_agent(bootstrap=True, target_noise_sigma=0.0)
        states = np.random.default_rng(0).uniform(0, 1, size=(6, 4))
        q = agent._target_q(states)
        sa = np.concatenate(
            [states, agent.actor_target.forward(states)], axis=1
        )
        q1 = agent.critic_target.forward(sa)
        q2 = agent.critic2_target.forward(sa)
        assert np.allclose(q, np.minimum(q1, q2))

    def test_losses_recorded(self):
        agent = make_agent()
        feed_episodes(agent)
        agent.learn()
        assert len(agent.critic_losses) > 0


class TestSearchIntegration:
    def test_autohet_dispatches_td3(self):
        engine = AutoHet(lenet(), agent_config=TD3Config(seed=0))
        assert isinstance(engine.agent, TD3Agent)

    def test_td3_search_runs_and_wins(self):
        from repro.arch.config import SQUARE_CANDIDATES
        from repro.core.search import best_homogeneous
        from repro.sim import Simulator

        net = lenet()
        sim = Simulator()
        engine = AutoHet(net, simulator=sim, agent_config=TD3Config(seed=1))
        result = engine.search(30)
        _, base = best_homogeneous(net, SQUARE_CANDIDATES, sim)
        assert result.best_metrics.reward > 0
        assert result.best_metrics.rue >= base.rue  # seeded probes guarantee
