"""Tests for the physical crossbar array."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape
from repro.arch.crossbar import Crossbar


@pytest.fixture
def xbar():
    return Crossbar(CrossbarShape(16, 8))


class TestProgramming:
    def test_program_column_segment(self, xbar):
        xbar.program(2, 3, np.array([1, 0, 1]))
        assert xbar.used_cells == 3
        assert xbar.cells[2, 3] == 1
        assert xbar.cells[3, 3] == 0
        assert xbar.cells[4, 3] == 1

    def test_used_rows_and_cols(self, xbar):
        xbar.program(0, 0, np.array([1, 1]))
        xbar.program(0, 5, np.array([0, 1, 0]))
        assert xbar.used_rows == 3
        assert xbar.used_cols == 2

    def test_rejects_double_programming(self, xbar):
        xbar.program(0, 0, np.array([1]))
        with pytest.raises(ValueError, match="already programmed"):
            xbar.program(0, 0, np.array([0]))

    def test_rejects_out_of_bounds(self, xbar):
        with pytest.raises(IndexError):
            xbar.program(15, 0, np.array([1, 1]))
        with pytest.raises(IndexError):
            xbar.program(0, 8, np.array([1]))
        with pytest.raises(IndexError):
            xbar.program(-1, 0, np.array([1]))

    def test_rejects_non_binary(self, xbar):
        with pytest.raises(ValueError, match="single bits"):
            xbar.program(0, 0, np.array([2]))

    def test_rejects_matrix_input(self, xbar):
        with pytest.raises(ValueError, match="1-D"):
            xbar.program(0, 0, np.ones((2, 2)))

    def test_program_block(self, xbar):
        block = np.array([[1, 0], [0, 1], [1, 1]])
        xbar.program_block(1, 2, block)
        assert np.array_equal(xbar.cells[1:4, 2:4], block)

    def test_erase(self, xbar):
        xbar.program(0, 0, np.array([1, 1]))
        xbar.erase()
        assert xbar.used_cells == 0
        xbar.program(0, 0, np.array([1]))  # reprogrammable after erase

    def test_cells_view_is_readonly(self, xbar):
        with pytest.raises(ValueError):
            xbar.cells[0, 0] = 1
        with pytest.raises(ValueError):
            xbar.used_mask[0, 0] = True

    def test_utilization(self, xbar):
        xbar.program(0, 0, np.array([1] * 16))
        assert xbar.utilization == pytest.approx(16 / 128)


class TestMVM:
    def test_exact_dot_product(self, xbar):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(16, 8))
        for c in range(8):
            xbar.program(0, c, bits[:, c])
        v = rng.integers(0, 2, size=16)
        assert np.array_equal(xbar.mvm(v), v @ bits)

    def test_short_vector_zero_padded(self, xbar):
        xbar.program(0, 0, np.array([1, 1, 1]))
        out = xbar.mvm(np.array([1, 1]))
        assert out[0] == 2

    def test_rejects_oversized_vector(self, xbar):
        with pytest.raises(ValueError):
            xbar.mvm(np.ones(17, dtype=int))

    def test_evaluation_counter(self, xbar):
        xbar.mvm(np.zeros(16, dtype=int))
        xbar.mvm(np.zeros(16, dtype=int))
        assert xbar.evaluations == 2

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_mvm_matches_matmul_property(self, seed):
        rng = np.random.default_rng(seed)
        r, c = int(rng.integers(1, 40)), int(rng.integers(1, 40))
        xb = Crossbar(CrossbarShape(r, c))
        bits = rng.integers(0, 2, size=(r, c))
        xb.program_block(0, 0, bits)
        v = rng.integers(0, 2, size=r)
        assert np.array_equal(xb.mvm(v), v @ bits)
