"""ASCII reporting helpers shared by the benchmark harness.

Every benchmark regenerates one paper table or figure and prints the same
rows/series the paper reports.  Figures become series tables: one row per
x-axis point, one column per series.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_value(value) -> str:
    """Human-friendly scalar formatting (scientific for extremes)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))


def normalize_series(values: Sequence[float], *, to_min: bool = True) -> list[float]:
    """Normalise a series so the min (or max) maps to 1.0 — the paper's
    "normalized energy" presentation (Fig. 9c)."""
    ref = min(values) if to_min else max(values)
    if ref == 0:
        return [0.0 for _ in values]
    return [v / ref for v in values]
