"""Accelerator area model.

Area is charged per *allocated tile* — a tile is fabricated (or reserved)
as a unit, so its empty crossbar slots still cost silicon.  This is what
makes the heterogeneous + tile-shared design win area in Table 5: higher
utilization means fewer allocated crossbars and, above all, fewer of the
area-dominant per-bitline ADCs.

One logical crossbar slot of shape ``r x c`` comprises
``xbars_per_group`` physical arrays, each carrying:

* ``r * c`` ReRAM cells,
* ``c`` ADCs (1 per ``adc_sharing`` bitlines) at ``adc_bits`` resolution,
* ``r`` 1-bit DAC drivers,
* ``c / adc_sharing`` shift-and-add units,

plus fixed per-PE and per-tile overheads (buffers, pooling, control).
"""

from __future__ import annotations

import math
from typing import Iterable

from ..arch.config import CrossbarShape, HardwareConfig
from ..core.allocation.tiles import Allocation


def crossbar_slot_area_um2(shape: CrossbarShape, config: HardwareConfig) -> float:
    """Area of one logical crossbar slot (the full bit-slice group), um^2."""
    adcs = math.ceil(shape.cols / config.adc_sharing)
    per_physical = (
        shape.cells * config.area_cell_um2
        + adcs * config.area_adc_um2()
        + shape.rows * config.area_dac_um2
        + adcs * config.area_shift_add_um2
    )
    return per_physical * config.xbars_per_group


def tile_area_um2(shape: CrossbarShape, config: HardwareConfig) -> float:
    """Area of one whole tile built with ``shape`` crossbars, um^2."""
    slots = config.logical_xbars_per_tile
    return (
        slots * crossbar_slot_area_um2(shape, config)
        + config.pes_per_tile * config.area_pe_overhead_um2
        + config.area_tile_overhead_um2
    )


def allocation_area_um2(allocation: Allocation, config: HardwareConfig) -> float:
    """Total area of all occupied tiles of an allocation, um^2."""
    return sum(
        tile_area_um2(t.shape, config)
        for t in allocation.tiles
        if t.occupied > 0
    )


def area_from_tile_runs(
    runs: Iterable[tuple[CrossbarShape, int]], config: HardwareConfig
) -> float:
    """Total area from per-layer ``(shape, surviving tiles)`` runs, um^2.

    The aggregate-summary fast path (``repro.core.allocation.summary``)
    knows how many tiles of each layer survive but never materialises
    them.  Occupied tiles are ordered by tile id — i.e. grouped into
    per-layer runs — so folding run by run, one addition per tile,
    reproduces :func:`allocation_area_um2`'s float sum bit for bit.
    """
    total = 0.0
    for shape, count in runs:
        if count <= 0:
            continue
        tile = tile_area_um2(shape, config)
        for _ in range(count):
            total += tile
    return total
