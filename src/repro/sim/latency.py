"""Inference latency model.

Single-image, layer-sequential execution: a layer's MVMs run back to back,
and the network's latency is the sum over layers (the Global Controller
streams layers through the tiles).  Per MVM:

* ``input_cycles`` bit-serial analog phases, each comprising DAC settle,
  crossbar evaluation, the ADC conversion chain (``ceil(active bitlines
  per crossbar / adc_sharing)`` sequential conversions; with the default
  one-ADC-per-bitline organisation the chain length is 1), and a
  shift-add stage;
* an adder-tree pass merging crossbar row-group partial sums
  (``ceil(log2(row_groups))`` levels);
* buffer/bus movement of the input vector and output activations;
* a fixed Global-Controller control overhead per MVM.

Pooling stages add one pooling-module cycle per pooled output element.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..arch.config import HardwareConfig
from ..arch.mapping import LayerMapping
from ..models.graph import Network


def mvm_latency_ns(mapping: LayerMapping, config: HardwareConfig) -> float:
    """Latency of one matrix-vector multiplication on this mapping (ns)."""
    layer = mapping.layer
    # Each ADC serially converts the `adc_sharing` bitlines muxed onto it;
    # all ADCs run in parallel, so the per-phase conversion chain is the
    # mux depth (1 with the default one-ADC-per-bitline organisation),
    # capped by how many active bitlines a crossbar actually has.  The cap
    # is always >= 1: LayerSpec requires out_channels >= 1, CrossbarShape
    # requires cols >= 1, and LayerMapping's MAP003 construction invariant
    # rejects degenerate group counts — a zero chain (which would silently
    # drop the ADC term) is unconstructible (tests/sim/test_vectorized_parity.py).
    chain = min(config.adc_sharing, mapping.used_columns_per_crossbar_max)
    analog_phase = (
        config.latency_dac_ns
        + config.latency_xbar_ns
        + chain * config.latency_adc_ns
        + config.latency_shift_add_ns
    )
    tree = mapping.adder_tree_depth * config.latency_adder_ns
    in_bytes = layer.in_channels * layer.kernel_elems
    out_bytes = layer.out_channels
    movement = (in_bytes + out_bytes) * config.latency_buffer_ns_per_byte + (
        in_bytes * mapping.col_groups + out_bytes
    ) * config.latency_bus_ns_per_byte
    return (
        config.input_cycles * analog_phase
        + tree
        + movement
        + config.latency_control_ns
    )


def layer_latency_ns(mapping: LayerMapping, config: HardwareConfig) -> float:
    """Latency of one layer's full inference pass (ns)."""
    return mapping.layer.mvm_ops * mvm_latency_ns(mapping, config)


# Memoised variants for the simulator hot path: a layer's latency depends
# only on its (mapping, config) pair — allocation-independent, so shared
# across all strategies giving the layer the same shape (see energy.py).
cached_layer_latency_ns = lru_cache(maxsize=65536)(layer_latency_ns)


def pooling_latency_ns(network: Network, config: HardwareConfig) -> float:
    """Latency of all pooling stages for one inference pass (ns)."""
    total = 0.0
    for i, layer in enumerate(network.layers):
        pool = network.pool_after_or_none(i)
        if pool is None:
            continue
        pooled = pool.output_size(layer.output_size) ** 2 * layer.out_channels
        total += pooled * config.latency_pool_ns
    return total


#: Memoised variant (pooling depends only on the network topology).
cached_pooling_latency_ns = lru_cache(maxsize=1024)(pooling_latency_ns)
