"""Fixture sim tree for the NUM rules — one positive/negative twin per rule.

Every ``bad_*`` function commits exactly one numeric hazard; its ``ok_*``
twin is the sanctioned form of the same computation (explicit promotion,
the cumsum left-fold, a guard, a waiver comment, an isfinite filter).
``tests/analysis/test_numeric.py`` asserts the analyzer flags precisely
the five bad functions and nothing else.
"""

import numpy as np


def bad_dtype_mix(n):
    a = np.zeros(n, dtype=np.int32)
    b = np.ones(n, dtype=np.int64)
    return a + b  # NUM001: int32 widened silently


def ok_dtype_mix(n):
    a = np.zeros(n, dtype=np.int64)
    b = np.ones(n, dtype=np.float64)
    return a + b  # int64 -> float64 is the scalar path's own promotion


def bad_reduction(values):
    batch = np.asarray(values).astype(np.float64)
    return np.sum(batch)  # NUM002: pairwise accumulation


def ok_reduction(values):
    batch = np.asarray(values).astype(np.float64)
    return np.cumsum(batch)[-1]  # the sanctioned left-fold idiom


def bad_division(counts):
    weights = np.zeros(4, dtype=np.float64)
    return counts / weights  # NUM003: denominator can be zero


def ok_division(counts):
    weights = np.zeros(4, dtype=np.float64)
    if np.all(weights > 0):
        return counts / weights
    return counts


def bad_float_equality(scale):
    return scale == 1.5  # NUM004: exact float equality


def ok_float_equality(scale):
    return scale == 1.5  # numeric-ok: NUM004 (deliberate sentinel twin)


def bad_nan_sink(scores):
    masked = np.asarray(scores) - np.inf
    return np.argmin(masked)  # NUM005: nan poisons the argmin


def ok_nan_sink(scores):
    masked = np.asarray(scores) - np.inf
    if np.all(np.isfinite(masked)):
        return np.argmin(masked)
    return -1
