"""Crossbar allocation schemes: the tile-based baseline and tile-shared
Algorithm 1 (§3.4)."""

from .multi_model import (
    ModelSlice,
    MultiModelAllocation,
    allocate_multi_network,
)
from .tile_based import (
    allocate_tile_based,
    layer_empty_fraction,
    layer_tiles_needed,
)
from .summary import (
    AllocationSummary,
    clear_summary_cache,
    summarize_allocation,
    summarize_counts,
    summary_cache_info,
)
from .tile_shared import apply_tile_sharing, plan_tile_sharing
from .tiles import Allocation, Tile

__all__ = [
    "Allocation",
    "AllocationSummary",
    "ModelSlice",
    "MultiModelAllocation",
    "Tile",
    "allocate_multi_network",
    "allocate_tile_based",
    "apply_tile_sharing",
    "clear_summary_cache",
    "layer_empty_fraction",
    "layer_tiles_needed",
    "plan_tile_sharing",
    "summarize_allocation",
    "summarize_counts",
    "summary_cache_info",
]
