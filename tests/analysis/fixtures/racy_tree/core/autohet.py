"""Fixture multi-seed search: global-mutation and shared-RNG races.

``autohet_multi_seed``'s workers append to a module-level list (CON002)
and draw from the shared ``random`` module RNG (CON004).  The clean
variant seeds a per-worker ``random.Random`` and returns values to the
parent — it must stay silent.
"""

import random
from concurrent.futures import ThreadPoolExecutor

_BEST_REWARDS = []  # module-level mutable state the workers race on


def autohet_multi_seed(seeds, rounds: int = 10):
    def run(seed: int) -> float:
        reward = random.random() * rounds  # CON004: shared module RNG
        _BEST_REWARDS.append(reward)       # CON002: global mutation
        return reward

    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(run, seeds))


def autohet_multi_seed_clean(seeds, rounds: int = 10):
    def run(seed: int) -> float:
        rng = random.Random(seed)  # negative: per-worker seeded RNG
        return rng.random() * rounds

    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(run, seeds))
