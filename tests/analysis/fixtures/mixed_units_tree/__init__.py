"""Fixture tree for the dimensional-analysis pass (UNI rules).

Laid out like the ``repro`` package (``sim/``, ``obs/``) so
``analyze_units(root=...)`` scans it with the same module paths.  Every
UNI rule has exactly one positive trigger here, each next to a negative
twin showing the clean spelling of the same computation.
"""
