#!/usr/bin/env python3
"""Mapping anatomy: kernels -> crossbars (Fig. 2 / Fig. 7) and tile
sharing (Fig. 8).

Recreates the paper's worked examples:

* Fig. 2 — two toy layers on a 32x32 crossbar with very different
  utilization (10.5% vs 62.5%);
* Fig. 5 — the same layer on 64x64 vs 128x128, showing the
  utilization/energy (activated-ADC) conflict;
* §3.3 — a 3x3-kernel layer that jumps from 83.7% to 100% utilization
  when the crossbar height becomes a multiple of 9;
* Fig. 8 — Algorithm 1 packing three sparse tiles into one.

Run:  python examples/mapping_demo.py
"""

from repro import CrossbarShape, LayerSpec, map_layer
from repro.core.allocation import allocate_tile_based, apply_tile_sharing


def show(layer: LayerSpec, shape: CrossbarShape) -> None:
    m = map_layer(layer, shape)
    print(
        f"  {layer.describe():<38} on {shape!s:>8}: "
        f"{m.row_groups}x{m.col_groups} crossbars, "
        f"u={m.utilization:6.1%}, activated ADCs/cycle={m.used_columns_total}"
    )


def main() -> None:
    print("Fig. 2 — one crossbar size does not fit all layers:")
    show(LayerSpec.conv(3, 4, 3, input_size=8), CrossbarShape(32, 32))
    show(LayerSpec.conv(32, 20, 1, input_size=8), CrossbarShape(32, 32))

    print("\nFig. 5 — the utilization/energy conflict:")
    fig5 = LayerSpec.conv(12, 128, 3, input_size=8)
    show(fig5, CrossbarShape(64, 64))
    show(fig5, CrossbarShape(128, 128))

    print("\n§3.3 — rectangle crossbars fix the 3x3-kernel mismatch:")
    l4 = LayerSpec.conv(128, 128, 3, input_size=16)
    show(l4, CrossbarShape(32, 32))
    show(l4, CrossbarShape(36, 32))

    print("\nFig. 8 — tile-shared allocation (Algorithm 1):")
    layers = [
        LayerSpec.conv(3, 10, 3, input_size=8).with_index(0),
        LayerSpec.conv(3, 12, 3, input_size=8).with_index(1),
        LayerSpec.conv(3, 20, 3, input_size=8).with_index(2),
    ]
    mappings = [map_layer(l, CrossbarShape(32, 32)) for l in layers]
    base = allocate_tile_based(mappings, 4)
    shared = apply_tile_sharing(base)
    print(
        f"  tile-based:  {base.occupied_tiles} tiles, "
        f"{base.empty_crossbars} empty crossbars, u={base.utilization:.1%}"
    )
    print(
        f"  tile-shared: {shared.occupied_tiles} tiles, "
        f"{shared.empty_crossbars} empty crossbars, u={shared.utilization:.1%}"
    )
    for tile in shared.tiles:
        occupants = ", ".join(
            f"L{idx + 1}x{n}" for idx, n in sorted(tile.occupants.items())
        )
        print(f"    tile {tile.tile_id}: {occupants}")


if __name__ == "__main__":
    main()
