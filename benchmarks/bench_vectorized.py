"""Vectorized cost-model kernels — batch throughput and exactness gates.

Pins the two performance contracts of ``repro.sim.kernels``
(docs/performance.md "Vectorized kernels"):

* a cold single-strategy evaluation (no evaluation-cache entry, warm
  shape tables — the search-loop steady state) completes in <= 100 us;
* scoring a batch of strategies through ``evaluate_many``'s kernel path
  beats the materialising reference loop by >= 10x end-to-end

while reproducing the reference results bit-for-bit, infeasible
verdicts included.  ``REPRO_BENCH_MODEL`` selects the workload (default
``vgg16``; CI's smoke job uses ``lenet``).
"""

from conftest import run_once

from repro.bench import print_vectorized_profile, vectorized_kernel_profile


def test_vectorized_kernels(benchmark):
    profile = run_once(benchmark, vectorized_kernel_profile)
    print_vectorized_profile(profile)
    benchmark.extra_info["model"] = profile.model
    benchmark.extra_info["strategies"] = profile.strategies
    benchmark.extra_info["cold_single_us"] = round(profile.cold_single_us, 1)
    benchmark.extra_info["scalar_single_us"] = round(profile.scalar_single_us, 1)
    benchmark.extra_info["batch_speedup"] = round(profile.batch_speedup, 1)
    benchmark.extra_info["batched_us_per_strategy"] = round(
        profile.batched_us_per_strategy, 1
    )
    # The kernels may never change results — only how fast they arrive.
    assert profile.identical, "vectorized batch diverged from the reference"
    # Cold single-strategy evaluation: the per-iteration budget that keeps
    # annealing / coordinate-ascent / RL loops simulator-bound no more.
    assert profile.cold_single_us <= 100.0, (
        f"cold evaluate took {profile.cold_single_us:.1f} us (budget 100 us)"
    )
    # End-to-end batch scoring must be an order of magnitude ahead of the
    # reference loop, not a marginal win.
    assert profile.batch_speedup >= 10.0, (
        f"batched scoring only {profile.batch_speedup:.1f}x vs reference"
    )
