"""Fixture obs package."""
