"""Differential battery: functional crossbar engine vs numpy MVM reference.

The functional engine computes ``x_q @ W_q`` the hard way — offset
encoding, bit-slicing across the crossbar group, per-row-group scatter,
bit-serial input streaming, saturating ADC, shift-and-add, adder-tree
merge.  With the paper's 10-bit ADC no candidate height (<= 576 rows)
can saturate a bitline sample, so the pipeline must be *integer-exact*
against a one-line float numpy matmul of the same quantized operands.

This battery pins that equivalence over all five hybrid rectangles of
§4.3 (36x32 … 576x512), all power-of-two squares (32x32 … 512x512),
CONV and FC row placements (including the kernel-split path), extreme
weight values, and hypothesis-fuzzed dimensions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
    HardwareConfig,
)
from repro.models.layers import LayerSpec
from repro.sim.functional import FunctionalLayerEngine

#: fewer bit cycles than the paper config, same exactness property
CFG = HardwareConfig(weight_bits=4, input_bits=4, adc_bits=10)

ALL_SHAPES = RECTANGLE_CANDIDATES + SQUARE_CANDIDATES
SHAPE_IDS = [str(s) for s in ALL_SHAPES]


def random_operands(layer, seed, config=CFG, batch=3):
    """Random in-range quantized weights and inputs for ``layer``."""
    rng = np.random.default_rng(seed)
    rows, cout = layer.weight_matrix_shape
    limit = 2 ** (config.weight_bits - 1)
    wq = rng.integers(-limit, limit, size=(rows, cout), dtype=np.int64)
    xq = rng.integers(
        0, 2**config.input_bits, size=(batch, rows), dtype=np.int64
    )
    return wq, xq


def assert_matches_reference(layer, shape, wq, xq, config=CFG):
    engine = FunctionalLayerEngine(layer, shape, wq, config)
    got = engine.mvm_batch(xq)
    # Float reference: every partial product and sum here is an integer
    # far below 2**53, so the float64 matmul is itself exact.
    ref = xq.astype(np.float64) @ wq.astype(np.float64)
    np.testing.assert_array_equal(got.astype(np.float64), ref)
    assert engine.counters.adc_saturations == 0
    return engine


@pytest.mark.parametrize("shape", ALL_SHAPES, ids=SHAPE_IDS)
class TestEveryCandidateShape:
    def test_fc_spanning_row_and_column_groups(self, shape):
        """FC matrix larger than one crossbar in both dimensions."""
        layer = LayerSpec.fc(shape.rows + shape.rows // 2 + 1, shape.cols + 7)
        wq, xq = random_operands(layer, seed=shape.rows * 1000 + shape.cols)
        engine = assert_matches_reference(layer, shape, wq, xq)
        assert engine.mapping.row_groups >= 2
        assert engine.mapping.col_groups >= 2

    def test_conv_kernel_row_placement(self, shape):
        """3x3 CONV rows land per the occupancy-grid slice placement.

        Rectangle heights are multiples of 9, so kernels stay whole;
        power-of-two squares leave padding rows (32 = 3 slices * 9 + 5)
        or split kernels across groups — all must stay exact.
        """
        slices = max(shape.rows // 9, 1)
        layer = LayerSpec.conv(slices + 1, 5, 3)  # forces >= 2 row groups
        wq, xq = random_operands(layer, seed=shape.rows, batch=4)
        engine = assert_matches_reference(layer, shape, wq, xq)
        assert engine.mapping.row_groups >= 2

    def test_extreme_weights_and_inputs(self, shape):
        """Every cell at a signed-range endpoint, every input at max."""
        layer = LayerSpec.fc(shape.rows + 1, 3)
        rows, cout = layer.weight_matrix_shape
        limit = 2 ** (CFG.weight_bits - 1)
        wq = np.empty((rows, cout), dtype=np.int64)
        wq[:, 0] = -limit
        wq[:, 1] = limit - 1
        wq[:, 2] = np.where(np.arange(rows) % 2 == 0, -limit, limit - 1)
        xq = np.full((2, rows), 2**CFG.input_bits - 1, dtype=np.int64)
        assert_matches_reference(layer, shape, wq, xq)


class TestSingleVector:
    def test_mvm_matches_batch(self):
        layer = LayerSpec.fc(50, 10)
        wq, xq = random_operands(layer, seed=7, batch=1)
        engine = FunctionalLayerEngine(layer, CrossbarShape(36, 32), wq, CFG)
        np.testing.assert_array_equal(
            engine.mvm(xq[0]), engine.mvm_batch(xq)[0]
        )


@settings(deadline=None, max_examples=30)
@given(
    shape=st.sampled_from(
        [
            CrossbarShape(32, 32),
            CrossbarShape(36, 32),
            CrossbarShape(72, 64),
            CrossbarShape(64, 64),
        ]
    ),
    in_features=st.integers(1, 150),
    out_features=st.integers(1, 70),
    seed=st.integers(0, 2**31 - 1),
)
def test_fc_fuzz(shape, in_features, out_features, seed):
    layer = LayerSpec.fc(in_features, out_features)
    wq, xq = random_operands(layer, seed=seed)
    assert_matches_reference(layer, shape, wq, xq)


@settings(deadline=None, max_examples=20)
@given(
    shape=st.sampled_from([CrossbarShape(32, 32), CrossbarShape(36, 32)]),
    in_channels=st.integers(1, 8),
    out_channels=st.integers(1, 10),
    kernel=st.sampled_from([1, 3, 5]),
    seed=st.integers(0, 2**31 - 1),
)
def test_conv_fuzz(shape, in_channels, out_channels, kernel, seed):
    layer = LayerSpec.conv(in_channels, out_channels, kernel)
    wq, xq = random_operands(layer, seed=seed, batch=2)
    assert_matches_reference(layer, shape, wq, xq)
