"""Processing element: one logical crossbar slot.

A PE gangs ``weight_bits / cell_bits`` physical crossbars (the bit-slice
group of §4.1), a DAC bank on the shared wordlines, an ADC bank per
physical array, and a shift-and-add unit.  It executes exact integer MVMs
for whatever weight block has been programmed into it.

This object model complements the vectorised
:class:`~repro.sim.functional.FunctionalLayerEngine`: the engine is the
fast path for whole-network inference; the PE/tile/bank objects model the
physical organisation the Global Controller drives, at per-crossbar
granularity, for small workloads and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import CrossbarShape, DEFAULT_CONFIG, HardwareConfig
from .crossbar import Crossbar
from .peripherals import ADCArray, DACArray, ShiftAdder


@dataclass  # stateful: owns mutable bit-slice crossbars and peripherals
class ProcessingElement:
    """One logical crossbar: bit-slice group + peripherals."""

    shape: CrossbarShape
    config: HardwareConfig = DEFAULT_CONFIG
    pe_id: int = 0
    crossbars: list[Crossbar] = field(init=False)
    dacs: DACArray = field(init=False)
    adcs: ADCArray = field(init=False)
    shift_adder: ShiftAdder = field(init=False)

    def __post_init__(self) -> None:
        self.crossbars = [
            Crossbar(self.shape) for _ in range(self.config.xbars_per_group)
        ]
        self.dacs = DACArray(lanes=self.shape.rows, bits=self.config.dac_bits)
        self.adcs = ADCArray(lanes=self.shape.cols, bits=self.config.adc_bits)
        self.shift_adder = ShiftAdder()

    # ------------------------------------------------------------------
    @property
    def programmed(self) -> bool:
        return any(xb.used_cells for xb in self.crossbars)

    @property
    def used_cells(self) -> int:
        """Logical weight cells programmed (same mask on every slice)."""
        return self.crossbars[0].used_cells

    def program_block(self, row0: int, col0: int, encoded_block: np.ndarray) -> None:
        """Program an offset-encoded unsigned weight block.

        ``encoded_block`` holds values in ``[0, 2^weight_bits - 1]``; bit
        ``b`` of each value lands in physical crossbar ``b``.
        """
        block = np.asarray(encoded_block, dtype=np.int64)
        hi = 2**self.config.weight_bits - 1
        if block.min(initial=0) < 0 or block.max(initial=0) > hi:
            raise ValueError("encoded weights out of cell range")
        for b, xb in enumerate(self.crossbars):
            xb.program_block(row0, col0, ((block >> b) & 1).astype(np.int8))

    def mvm(self, x_q: np.ndarray) -> np.ndarray:
        """Bit-serial exact MVM of an unsigned input vector.

        Returns the integer product against the *encoded* weights; the
        caller (tile) removes the offset term.
        """
        cfg = self.config
        x = np.asarray(x_q, dtype=np.int64)
        if x.size > self.shape.rows:
            raise ValueError(f"input of {x.size} exceeds {self.shape.rows} rows")
        if x.min(initial=0) < 0 or x.max(initial=0) > 2**cfg.input_bits - 1:
            raise ValueError("inputs exceed the unsigned input range")
        if x.size < self.shape.rows:
            x = np.pad(x, (0, self.shape.rows - x.size))
        self.shift_adder.reset(self.shape.cols)
        for ib in range(cfg.input_cycles):
            plane = (x >> ib) & 1
            voltages = self.dacs.drive(plane)
            for wb, xb in enumerate(self.crossbars):
                currents = xb.mvm(voltages.astype(np.int64))
                codes = self.adcs.sample(currents)
                self.shift_adder.accumulate(codes, ib + wb)
        return self.shift_adder.value
