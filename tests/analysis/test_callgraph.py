"""Tests for the module index / call-resolution layer."""

from pathlib import Path

import repro
from repro.analysis.callgraph import (
    External,
    FunctionInfo,
    ModuleIndex,
)

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "unsound_tree"


def small_index():
    return ModuleIndex.from_sources(
        {
            "pkg": "",
            "pkg.util": (
                "import math\n"
                "def helper(x):\n"
                "    return math.sqrt(x)\n"
                "class Thing:\n"
                "    size: int\n"
                "    KIND = 'fixed'\n"
                "    def area(self):\n"
                "        return self.size * self.size\n"
                "    @property\n"
                "    def doubled(self):\n"
                "        return self.size * 2\n"
                "    @staticmethod\n"
                "    def zero():\n"
                "        return 0\n"
            ),
            "pkg.main": (
                "from .util import Thing, helper\n"
                "renamed = helper\n"
                "def entry(t):\n"
                "    return helper(t.size)\n"
            ),
        }
    )


class TestIndexing:
    def test_functions_and_classes_indexed(self):
        index = small_index()
        util = index.modules["pkg.util"]
        assert "helper" in util.functions
        assert "Thing" in util.classes

    def test_class_members_partitioned(self):
        cls = small_index().modules["pkg.util"].classes["Thing"]
        assert "size" in cls.fields
        assert "KIND" in cls.class_attrs
        assert "area" in cls.methods
        assert "doubled" in cls.properties
        assert cls.methods["zero"].is_staticmethod

    def test_qualnames(self):
        util = small_index().modules["pkg.util"]
        assert util.functions["helper"].qualname == "pkg.util:helper"
        assert (
            util.classes["Thing"].methods["area"].qualname
            == "pkg.util:Thing.area"
        )


class TestResolution:
    def test_resolve_local_function(self):
        index = small_index()
        entity = index.resolve(index.modules["pkg.util"], "helper")
        assert isinstance(entity, FunctionInfo)

    def test_resolve_through_relative_import(self):
        index = small_index()
        entity = index.resolve(index.modules["pkg.main"], "Thing")
        assert entity is index.modules["pkg.util"].classes["Thing"]

    def test_resolve_through_local_alias(self):
        index = small_index()
        entity = index.resolve(index.modules["pkg.main"], "renamed")
        assert entity is index.modules["pkg.util"].functions["helper"]

    def test_external_import_becomes_external(self):
        index = small_index()
        entity = index.resolve(index.modules["pkg.util"], "math")
        assert isinstance(entity, External)
        assert entity.qualname == "math"

    def test_unknown_name_is_none(self):
        index = small_index()
        assert index.resolve(index.modules["pkg.util"], "nonexistent") is None

    def test_resolve_qualname_method(self):
        index = small_index()
        func = index.resolve_qualname("pkg.util:Thing.area")
        assert isinstance(func, FunctionInfo)
        assert func.name == "area"

    def test_find_class_by_simple_name(self):
        index = small_index()
        assert index.find_class("Thing").qualname == "pkg.util:Thing"


class TestFromPackage:
    def test_fixture_tree_indexes_with_repro_names(self):
        index = ModuleIndex.from_package(FIXTURE_TREE, "repro")
        assert "repro" in index.modules
        assert "repro.sim.simulator" in index.modules
        assert index.resolve_qualname("repro.sim.simulator:Simulator.evaluate")

    def test_real_package_indexes_every_module(self):
        root = Path(repro.__file__).resolve().parent
        index = ModuleIndex.from_package(root, "repro")
        assert "repro.sim.simulator" in index.modules
        assert "repro.arch.config" in index.modules
        assert index.modules["repro.sim"].is_package

    def test_lru_cache_wrapper_alias_indexed(self):
        # ``cached_x = lru_cache(N)(x)`` must resolve to the wrapped
        # function — the engine follows these into the cost models.
        root = Path(repro.__file__).resolve().parent
        index = ModuleIndex.from_package(root, "repro")
        energy = index.modules["repro.sim.energy"]
        entity = index.resolve(energy, "cached_layer_dynamic_energy")
        assert isinstance(entity, FunctionInfo)
        assert entity.name == "layer_dynamic_energy"
