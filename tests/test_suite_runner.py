"""Tests for the one-call full-suite runner."""

import json

import pytest

from repro.bench.suite import run_full_suite, summarize_suite


@pytest.fixture(scope="module")
def doc():
    # A very small budget: the point is structure, not search quality.
    return run_full_suite(rounds=6, seed=0)


class TestSuiteDocument:
    def test_all_experiments_present(self, doc):
        for key in (
            "fig3", "fig4", "fig5", "fig9", "fig10",
            "fig11a", "fig11b", "fig11c",
            "table3", "table4", "table5", "search_time",
        ):
            assert key in doc, key
            assert doc[key], key

    def test_meta_block(self, doc):
        assert doc["meta"]["rounds"] == 6
        assert doc["meta"]["seed"] == 0
        assert set(doc["meta"]["timing_s"]) >= {"fig3", "fig9", "table5"}
        assert all(t >= 0 for t in doc["meta"]["timing_s"].values())

    def test_json_serialisable(self, doc):
        json.dumps(doc)

    def test_fig9_covers_three_models(self, doc):
        models = {r["model"] for r in doc["fig9"]}
        assert models == {"AlexNet", "VGG16", "ResNet152"}

    def test_fig5_records_pinned(self, doc):
        adcs = {r["crossbar"]: r["activated_adcs"] for r in doc["fig5"]}
        assert adcs == {"64x64": 256, "128x128": 128}

    def test_search_time_block(self, doc):
        (entry,) = doc["search_time"]
        assert 0 < entry["simulator_fraction"] < 1

    def test_summary_mentions_models_and_speedups(self, doc):
        text = summarize_suite(doc)
        assert "VGG16" in text and "ResNet152" in text
        assert "x best homogeneous" in text
        assert "total experiment time" in text


class TestCLIIntegration:
    def test_experiment_all_export(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "suite.json"
        assert (
            main(["experiment", "all", "--rounds", "5", "--export", str(path)])
            == 0
        )
        doc = json.loads(path.read_text())
        assert "fig9" in doc and "table5" in doc
        out = capsys.readouterr().out
        assert "wrote full suite document" in out
