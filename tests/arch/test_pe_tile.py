"""Tests for ProcessingElement and HardwareTile."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import CrossbarShape, HardwareConfig
from repro.arch.pe import ProcessingElement
from repro.arch.tile import BlockAssignment, HardwareTile
from repro.sim.quantization import offset_encode

CFG = HardwareConfig()  # 8-bit weights/inputs, 1-bit cells/DACs, 10-bit ADC


class TestProcessingElement:
    def test_bit_slice_group_size(self):
        pe = ProcessingElement(CrossbarShape(32, 32), CFG)
        assert len(pe.crossbars) == 8

    def test_programmed_flag(self):
        pe = ProcessingElement(CrossbarShape(16, 16), CFG)
        assert not pe.programmed
        pe.program_block(0, 0, np.array([[255]]))
        assert pe.programmed

    def test_bit_slicing_across_crossbars(self):
        pe = ProcessingElement(CrossbarShape(8, 8), CFG)
        pe.program_block(0, 0, np.array([[0b10110101]]))
        bits = [int(xb.cells[0, 0]) for xb in pe.crossbars]  # LSB first
        assert bits == [1, 0, 1, 0, 1, 1, 0, 1]

    def test_rejects_out_of_range_weights(self):
        pe = ProcessingElement(CrossbarShape(8, 8), CFG)
        with pytest.raises(ValueError):
            pe.program_block(0, 0, np.array([[256]]))
        with pytest.raises(ValueError):
            pe.program_block(0, 0, np.array([[-1]]))

    def test_mvm_exact_against_encoded_weights(self):
        rng = np.random.default_rng(3)
        pe = ProcessingElement(CrossbarShape(24, 12), CFG)
        encoded = rng.integers(0, 256, size=(24, 12))
        pe.program_block(0, 0, encoded)
        x = rng.integers(0, 256, size=24)
        assert np.array_equal(pe.mvm(x), x @ encoded)

    def test_mvm_rejects_bad_inputs(self):
        pe = ProcessingElement(CrossbarShape(8, 8), CFG)
        with pytest.raises(ValueError):
            pe.mvm(np.full(9, 1))           # too long
        with pytest.raises(ValueError):
            pe.mvm(np.array([256] + [0] * 7))  # out of input range
        with pytest.raises(ValueError):
            pe.mvm(np.array([-1] + [0] * 7))

    def test_short_input_padded(self):
        pe = ProcessingElement(CrossbarShape(8, 4), CFG)
        pe.program_block(0, 0, np.full((8, 4), 1))
        out = pe.mvm(np.array([10, 20]))
        assert np.array_equal(out, np.full(4, 30))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_mvm_property(self, seed):
        rng = np.random.default_rng(seed)
        r = int(rng.integers(1, 40))
        c = int(rng.integers(1, 20))
        pe = ProcessingElement(CrossbarShape(r, c), CFG)
        encoded = rng.integers(0, 256, size=(r, c))
        pe.program_block(0, 0, encoded)
        x = rng.integers(0, 256, size=r)
        assert np.array_equal(pe.mvm(x), x @ encoded)


class TestHardwareTile:
    def make_tile(self):
        return HardwareTile(0, CrossbarShape(16, 8), CFG)

    def test_capacity_follows_config(self):
        assert self.make_tile().capacity == CFG.pes_per_tile

    def test_assign_and_query(self):
        tile = self.make_tile()
        block = np.zeros((4, 3), dtype=int)
        tile.assign_block(1, BlockAssignment(5, 0, 0, 4, 3), block)
        assert tile.occupied == 1
        assert tile.layers == (5,)
        assert 1 not in tile.free_slots

    def test_rejects_double_assignment(self):
        tile = self.make_tile()
        a = BlockAssignment(0, 0, 0, 1, 1)
        tile.assign_block(0, a, np.zeros((1, 1), dtype=int))
        with pytest.raises(ValueError, match="already assigned"):
            tile.assign_block(0, a, np.zeros((1, 1), dtype=int))

    def test_rejects_shape_mismatch(self):
        tile = self.make_tile()
        with pytest.raises(ValueError, match="block shape"):
            tile.assign_block(
                0, BlockAssignment(0, 0, 0, 2, 2), np.zeros((3, 3), dtype=int)
            )

    def test_rejects_bad_pe_id(self):
        tile = self.make_tile()
        with pytest.raises(IndexError):
            tile.assign_block(
                99, BlockAssignment(0, 0, 0, 1, 1), np.zeros((1, 1), dtype=int)
            )

    def test_release_frees_slot(self):
        tile = self.make_tile()
        tile.assign_block(
            2, BlockAssignment(0, 0, 0, 1, 1), np.zeros((1, 1), dtype=int)
        )
        tile.release(2)
        assert tile.occupied == 0
        assert 2 in tile.free_slots

    def test_mvm_block_exact(self):
        rng = np.random.default_rng(9)
        tile = self.make_tile()
        wq = rng.integers(-128, 128, size=(10, 5))
        encoded = offset_encode(wq, 8)
        tile.assign_block(0, BlockAssignment(7, 0, 0, 10, 5), encoded)
        x = rng.integers(0, 256, size=10)
        out = tile.mvm_block(0, x)
        assert np.array_equal(out, x @ encoded)

    def test_mvm_block_rejects_empty_pe(self):
        with pytest.raises(ValueError, match="empty"):
            self.make_tile().mvm_block(0, np.zeros(4, dtype=int))

    def test_mvm_block_rejects_wrong_width(self):
        tile = self.make_tile()
        tile.assign_block(
            0, BlockAssignment(0, 0, 0, 4, 2), np.zeros((4, 2), dtype=int)
        )
        with pytest.raises(ValueError):
            tile.mvm_block(0, np.zeros(5, dtype=int))

    def test_multiple_layers_share_tile(self):
        tile = self.make_tile()
        tile.assign_block(
            0, BlockAssignment(1, 0, 0, 1, 1), np.zeros((1, 1), dtype=int)
        )
        tile.assign_block(
            1, BlockAssignment(2, 0, 0, 1, 1), np.zeros((1, 1), dtype=int)
        )
        assert tile.layers == (1, 2)
