"""AutoHet — automated heterogeneous ReRAM-based accelerator for DNN
inference.

Reproduction of Wu et al., ICPP 2024 (DOI 10.1145/3673038.3673143).

Public API tour
---------------
Workloads (paper Table 2)::

    from repro import vgg16, alexnet, resnet152
    net = vgg16()                       # VGG16 on CIFAR-10 shapes

Behavioral simulator (the MNSIM role)::

    from repro import Simulator, CrossbarShape
    sim = Simulator()
    metrics = sim.evaluate_homogeneous(net, CrossbarShape(512, 512))
    print(metrics.rue, metrics.utilization_percent, metrics.energy_nj)

The AutoHet RL search (§3.2)::

    from repro import autohet_search
    result = autohet_search(net, rounds=300, seed=0)
    print(result.summary())

Functional bit-exact inference through the mapped crossbars::

    from repro import FunctionalNetworkEngine
    engine = FunctionalNetworkEngine(net, result.best_strategy)
    logits = engine.forward(net.dataset.synthetic_batch(1)[0])
"""

from .arch.config import (
    DEFAULT_CANDIDATES,
    DEFAULT_CONFIG,
    RECTANGLE_CANDIDATES,
    SQUARE_CANDIDATES,
    CrossbarShape,
    HardwareConfig,
)
from .arch.mapping import LayerMapping, eq4_utilization, map_layer
from .core import AutoHet, SearchResult, autohet_search
from .core.allocation import Allocation, Tile, allocate_tile_based, apply_tile_sharing
from .core.search import (
    best_homogeneous,
    exhaustive_search,
    greedy_reward_strategy,
    greedy_utilization_strategy,
    homogeneous_strategy,
    hybrid_candidates,
    manual_hetero_strategy,
    random_search,
)
from .models import (
    CIFAR10,
    IMAGENET,
    MNIST,
    DatasetSpec,
    LayerSpec,
    LayerType,
    Network,
    PoolSpec,
    alexnet,
    get_dataset,
    get_model,
    lenet,
    paper_workloads,
    resnet152,
    tiny_cnn,
    vgg16,
)
from .sim import SystemMetrics, Simulator
from .sim.accuracy import evaluate_agreement, fault_sweep
from .sim.functional import FunctionalLayerEngine, FunctionalNetworkEngine
from .sim.pipeline import pipeline_report
from .sim.replication import balance_replication
from .sim.variation import VariationModel, inject_faults

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CANDIDATES",
    "DEFAULT_CONFIG",
    "RECTANGLE_CANDIDATES",
    "SQUARE_CANDIDATES",
    "CrossbarShape",
    "HardwareConfig",
    "LayerMapping",
    "eq4_utilization",
    "map_layer",
    "AutoHet",
    "SearchResult",
    "autohet_search",
    "Allocation",
    "Tile",
    "allocate_tile_based",
    "apply_tile_sharing",
    "best_homogeneous",
    "exhaustive_search",
    "greedy_reward_strategy",
    "greedy_utilization_strategy",
    "homogeneous_strategy",
    "hybrid_candidates",
    "manual_hetero_strategy",
    "random_search",
    "CIFAR10",
    "IMAGENET",
    "MNIST",
    "DatasetSpec",
    "LayerSpec",
    "LayerType",
    "Network",
    "PoolSpec",
    "alexnet",
    "get_dataset",
    "get_model",
    "lenet",
    "paper_workloads",
    "resnet152",
    "tiny_cnn",
    "vgg16",
    "SystemMetrics",
    "Simulator",
    "FunctionalLayerEngine",
    "FunctionalNetworkEngine",
    "VariationModel",
    "balance_replication",
    "evaluate_agreement",
    "fault_sweep",
    "inject_faults",
    "pipeline_report",
]
