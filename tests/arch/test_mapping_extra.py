"""Additional mapping-detail tests: per-crossbar maxima, FC edge cases,
and the interplay between candidate geometry and kernel sizes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import (
    CrossbarShape,
    DEFAULT_CANDIDATES,
    RECTANGLE_CANDIDATES,
)
from repro.arch.mapping import map_layer
from repro.models.layers import LayerSpec


class TestPerCrossbarColumns:
    def test_small_layer_uses_fewer_than_width(self):
        layer = LayerSpec.conv(3, 20, 1, input_size=8)
        m = map_layer(layer, CrossbarShape(32, 32))
        assert m.used_columns_per_crossbar_max == 20

    def test_wide_layer_saturates_width(self):
        layer = LayerSpec.conv(3, 100, 1, input_size=8)
        m = map_layer(layer, CrossbarShape(32, 32))
        assert m.used_columns_per_crossbar_max == 32

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 600), st.sampled_from([1, 3]))
    def test_bounded_by_width_and_cout(self, cin, cout, k):
        for shape in DEFAULT_CANDIDATES:
            m = map_layer(LayerSpec.conv(cin, cout, k), shape)
            assert m.used_columns_per_crossbar_max <= shape.cols
            assert m.used_columns_per_crossbar_max <= cout


class TestRectangleAdvantage:
    @pytest.mark.parametrize("rect", RECTANGLE_CANDIDATES)
    def test_rectangles_never_lose_to_matched_squares_on_3x3(self, rect):
        """For 3x3-kernel layers, every RXB at least matches the SXB of
        the same width on intra-array utilization whenever the square's
        slice count divides evenly worse."""
        square = CrossbarShape(rect.cols, rect.cols)
        layer = LayerSpec.conv(64, rect.cols, 3, input_size=8)
        u_rect = map_layer(layer, rect).utilization
        u_square = map_layer(layer, square).utilization
        assert u_rect >= u_square - 1e-12

    def test_rectangles_can_lose_on_1x1(self):
        """The flip side: for k=1 the extra rows are pure overhead when
        channel counts align with the square's power-of-two height."""
        layer = LayerSpec.conv(256, 256, 1, input_size=8)
        u_square = map_layer(layer, CrossbarShape(256, 256)).utilization
        u_rect = map_layer(layer, CrossbarShape(288, 256)).utilization
        assert u_square > u_rect

    def test_fc_prefers_power_of_two(self):
        """§3.3: square power-of-two crossbars suit FC layers like F4096."""
        layer = LayerSpec.fc(512, 4096)
        u_square = map_layer(layer, CrossbarShape(512, 512)).utilization
        u_rect = map_layer(layer, CrossbarShape(576, 512)).utilization
        assert u_square == pytest.approx(1.0)
        assert u_square > u_rect


class TestFCEdgeCases:
    def test_single_neuron_fc(self):
        m = map_layer(LayerSpec.fc(1, 1), CrossbarShape(32, 32))
        assert m.num_crossbars == 1
        assert m.utilization == pytest.approx(1 / 1024)

    def test_fc_wider_than_any_crossbar(self):
        m = map_layer(LayerSpec.fc(10, 5000), CrossbarShape(512, 512))
        assert m.col_groups == 10
        assert m.used_columns_total == 5000

    def test_fc_taller_than_any_crossbar(self):
        m = map_layer(LayerSpec.fc(5000, 10), CrossbarShape(512, 512))
        assert m.row_groups == 10
        assert not m.kernel_split  # k=1 slices always fit


class TestDescribe:
    def test_kernel_split_flagged_in_text(self):
        layer = LayerSpec.conv(3, 10, 7, input_size=28)
        m = map_layer(layer, CrossbarShape(32, 32))
        assert "[kernel-split]" in m.describe()

    def test_normal_mapping_not_flagged(self):
        layer = LayerSpec.conv(3, 10, 3, input_size=28)
        m = map_layer(layer, CrossbarShape(32, 32))
        assert "[kernel-split]" not in m.describe()
