"""Round-trip tests for serialization of strategies/configs/results."""

import json

import pytest

from repro.arch.config import CrossbarShape, DEFAULT_CANDIDATES, HardwareConfig
from repro.core import autohet_search
from repro.models import lenet
from repro.serialize import (
    config_from_dict,
    config_to_dict,
    load_config,
    load_result_strategy,
    load_strategy,
    metrics_to_dict,
    result_to_dict,
    save_config,
    save_result,
    save_strategy,
    strategy_from_list,
    strategy_to_list,
)


class TestStrategyRoundTrip:
    def test_list_round_trip(self):
        strategy = (CrossbarShape(576, 512), CrossbarShape(36, 32))
        assert strategy_from_list(strategy_to_list(strategy)) == strategy

    def test_file_round_trip(self, tmp_path):
        strategy = tuple(DEFAULT_CANDIDATES)
        path = tmp_path / "strategy.json"
        save_strategy(strategy, path)
        assert load_strategy(path) == strategy

    def test_file_is_readable_json(self, tmp_path):
        path = tmp_path / "s.json"
        save_strategy((CrossbarShape(72, 64),), path)
        assert json.loads(path.read_text()) == ["72x64"]


class TestConfigRoundTrip:
    def test_dict_round_trip_default(self):
        cfg = HardwareConfig()
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_dict_round_trip_custom(self):
        cfg = HardwareConfig(pes_per_tile=16, adc_bits=8, weight_bits=4)
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_partial_dict_uses_defaults(self):
        cfg = config_from_dict({"pes_per_tile": 32})
        assert cfg.pes_per_tile == 32
        assert cfg.adc_bits == HardwareConfig().adc_bits

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            config_from_dict({"gpu_count": 4})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError):
            config_from_dict({"pes_per_tile": 0})

    def test_file_round_trip(self, tmp_path):
        cfg = HardwareConfig(adc_sharing=4, leak_cell_nw=0.2)
        path = tmp_path / "hw.json"
        save_config(cfg, path)
        assert load_config(path) == cfg


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        return autohet_search(lenet(), rounds=10, seed=0)

    def test_document_fields(self, result):
        doc = result_to_dict(result)
        assert doc["network"] == "LeNet"
        assert doc["rounds"] == 10
        assert len(doc["best_strategy"]) == 5
        assert doc["best_metrics"]["rue"] == pytest.approx(result.best_metrics.rue)
        assert len(doc["reward_history"]) == len(result.reward_history)
        assert set(doc["timing"]) == {
            "decision_seconds", "simulator_seconds", "learning_seconds",
        }

    def test_document_is_json_serialisable(self, result):
        json.dumps(result_to_dict(result))

    def test_strategy_recoverable_from_file(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        assert load_result_strategy(path) == result.best_strategy

    def test_metrics_dict_fields(self, result):
        doc = metrics_to_dict(result.best_metrics)
        assert doc["utilization"] == pytest.approx(result.best_metrics.utilization)
        assert doc["tile_shared"] is True

    def test_saved_strategy_reevaluates_identically(self, result, tmp_path):
        """The deployable artifact: saved strategy -> same metrics."""
        from repro.sim import Simulator

        path = tmp_path / "result.json"
        save_result(result, path)
        strategy = load_result_strategy(path)
        metrics = Simulator().evaluate(
            lenet(), strategy, tile_shared=True, detailed=False
        )
        assert metrics.rue == pytest.approx(result.best_metrics.rue)
