"""Static race detection for the shared-cache / worker fan-out paths.

``Simulator.evaluate_many`` fans a batch out over thread or process
pools, ``autohet_multi_seed`` shares one simulator (and therefore one
``EvaluationCache``) across seed workers, and the ``repro.obs`` tracers
hold thread-locals and open files that must never cross a process
boundary.  All of that is only *informally* thread-safe — docstrings
promise locks.  This module proves the discipline statically, the same
way :mod:`repro.analysis.dataflow` proves cache-key soundness:

1. **Fan-out discovery** — every function whose body mentions
   ``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` / ``threading.Thread``
   (plus the contract's declared roots) becomes an analysis root.
2. **Worker traversal** — the dataflow interpreter follows the submitted
   callables into worker context, tracking *escape provenance*: objects
   that flow into a worker from outside (closures, parameters, attributes
   of shared objects) are shared; objects the worker constructs itself
   are fresh and cannot race.
3. **Lock discipline** — mutable attributes declare their guard with a
   structured comment, sibling to PR 1's ``# stateful:`` markers::

       self._entries: OrderedDict[CacheKey, object] = OrderedDict()  # guarded-by: _lock

   and helpers that are only ever called with the lock held declare it
   on the ``def`` line::

       def _handle(self) -> TextIO:  # holds-lock: _lock

   The special guard tokens ``thread-local``, ``atomic``, ``init-only``
   and ``worker-local`` declare an attribute safe without a lock.

The CON rule family (:mod:`repro.analysis.invariants`):

========  =============================================================
CON001    write to a shared mutable attribute from a thread worker with
          no declared guard and no lock held (ERROR)
CON002    module-global mutation reachable from a worker (ERROR)
CON003    tracer / lock / open-file / non-picklable state captured
          across a process boundary (ERROR)
CON004    shared RNG (``random.random`` …) drawn inside a worker without
          per-worker seeding (ERROR)
CON005    ``guarded-by`` declared but a write site is not dominated by
          ``with self.<lock>:`` (ERROR)
========  =============================================================

CON005 is checked twice: along the interpreter's worker traversal (which
also catches *external* writers of a guarded attribute) and by a
whole-class syntactic pass over every method of every class that
declares a guard — discipline holds even for methods no fan-out reaches
yet.  Like the cache-safety pass, the interpreter is optimistic about
unknowns; strictness comes from the known surface (indexed classes,
declared guards, resolvable callables).

Entry points: :func:`analyze_concurrency_tree` (generic, over any
:class:`~repro.analysis.callgraph.ModuleIndex`), :func:`concurrency_contract`
(the repro tree's own fan-out contract) and :func:`analyze_concurrency`
(wired into ``repro check --concurrency``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from .callgraph import ClassInfo, FunctionInfo, ModuleConstant, ModuleIndex, ModuleInfo
from .dataflow import (
    MUTATOR_METHODS,
    UNKNOWN,
    Atom,
    ClassVal,
    DictVal,
    ExtVal,
    FuncVal,
    Instance,
    IterVal,
    MemoContract,
    TupleVal,
    Value,
    _Analyzer,
    _element_of,
    _first_param_name,
    _Frame,
    _v,
)
from .invariants import CON001, CON002, CON003, CON004, CON005, Diagnostic, Rule

# ----------------------------------------------------------------------
# Structured comment contracts
# ----------------------------------------------------------------------

#: ``# guarded-by: <lock-attr-or-token>`` on an attribute definition line
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w-]*)")
#: ``# holds-lock: <lock-attr>`` on a method's ``def`` line
_HOLDS_LOCK = re.compile(r"#\s*holds-lock:\s*([A-Za-z_]\w*)")

#: guard tokens that declare an attribute safe *without* a lock
EXEMPT_GUARDS: frozenset[str] = frozenset(
    {"thread-local", "atomic", "init-only", "worker-local"}
)

#: methods where writes establish, not mutate, state
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__del__"})

#: constructor calls that make a class non-picklable (CON003)
_HAZARD_CALLS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier", "local", "open"}
)

#: constructors of module-level mutable containers (CON002 carriers)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def _scan_lines(source: str, start: int, stop: int, pattern: re.Pattern[str]) -> list[str]:
    """All ``pattern`` captures on source lines ``start``..``stop`` (1-based,
    inclusive), plus a pure-comment line immediately above ``start``."""
    lines = source.splitlines()
    found: list[str] = []
    if start >= 2 and start - 2 < len(lines):
        above = lines[start - 2].strip()
        if above.startswith("#"):
            found.extend(pattern.findall(above))
    for line in lines[start - 1 : stop]:
        found.extend(pattern.findall(line))
    return found


def _guard_markers(cls: ClassInfo) -> dict[str, str]:
    """``attr -> guard`` declared by ``# guarded-by:`` comments on the
    class body and on ``self.<attr> = …`` lines in ``__init__``."""
    guards: dict[str, str] = {}
    source = cls.module.source

    def note(stmt: ast.stmt, attrs: Iterable[str]) -> None:
        stop = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        names = _scan_lines(source, stmt.lineno, stop, _GUARDED_BY)
        if names:
            for attr in attrs:
                guards.setdefault(attr, names[0])

    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            note(stmt, [stmt.target.id])
        elif isinstance(stmt, ast.Assign):
            note(
                stmt,
                [t.id for t in stmt.targets if isinstance(t, ast.Name)],
            )
    for name in ("__init__", "__post_init__"):
        init = cls.methods.get(name)
        if init is None:
            continue
        self_name = _first_param_name(init.node)
        for stmt in ast.walk(init.node):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            attrs = [
                t.attr
                for t in targets
                if isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == self_name
            ]
            if attrs and isinstance(stmt, ast.stmt):
                note(stmt, attrs)
    return guards


def _holds_markers(func: FunctionInfo) -> list[str]:
    """Lock attrs a method's ``def`` line declares as held on entry."""
    node = func.node
    if isinstance(node, ast.Lambda) or not node.body:
        return []
    stop = max(node.lineno, node.body[0].lineno - 1)
    return _scan_lines(func.module.source, node.lineno, stop, _HOLDS_LOCK)


# ----------------------------------------------------------------------
# Extra abstract values
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolVal:
    """A live executor (``kind`` is ``"thread"`` or ``"process"``)."""

    kind: str


@dataclass(frozen=True)
class PoolMethod:
    """An executor's ``submit`` / ``map`` awaiting its call."""

    kind: str
    method: str


@dataclass(frozen=True)
class GlobalVal:
    """A module-level mutable container (CON002 carrier)."""

    module: str
    name: str


@dataclass(frozen=True)
class InstanceOv:
    """An instance copied via ``dataclasses.replace`` with per-field
    overrides — the pickle walk (CON003) honours the overrides, so
    ``replace(self, cache=None, tracer=NULL_TRACER)`` is recognised as
    deliberately stripping the non-picklable state."""

    cls: ClassInfo
    overrides: tuple[tuple[str, Value], ...]


# ----------------------------------------------------------------------
# The contract
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConcurrencyContract:
    """What fans out, and what is known-safe."""

    #: roots that must resolve (``"module:Class.method"`` / ``"module:func"``);
    #: unresolvable roots raise — a silent no-op analysis proves nothing
    extra_roots: tuple[str, ...] = ()
    #: module prefixes excluded from traversal (the analyzer itself)
    boundary_modules: tuple[str, ...] = ()
    #: names whose mere mention makes a function a fan-out root
    fan_out_markers: frozenset[str] = frozenset(
        {"ThreadPoolExecutor", "ProcessPoolExecutor", "Thread"}
    )
    #: external prefixes that are shared RNG state (CON004)
    rng_prefixes: tuple[str, ...] = ("random.", "numpy.random.")
    #: per-worker-seedable constructors exempt from CON004
    rng_safe: frozenset[str] = frozenset(
        {"random.Random", "random.SystemRandom", "numpy.random.default_rng",
         "numpy.random.Generator", "numpy.random.SeedSequence"}
    )
    #: class simple names declared picklable despite their bases (CON003)
    picklable_allowlist: frozenset[str] = frozenset()
    #: external prefixes that never pickle (CON003)
    nonpicklable_ext_prefixes: tuple[str, ...] = (
        "threading.", "_thread.", "io.", "socket.", "sqlite3.",
    )


# ----------------------------------------------------------------------
# The analyzer
# ----------------------------------------------------------------------


class _ConAnalyzer(_Analyzer):
    """Dataflow interpreter specialised for race detection.

    Reuses the base traversal machinery with an inert
    :class:`~repro.analysis.dataflow.MemoContract` (no coverage, no
    sinks, no purity classes), so none of the CAC/PUR rules fire; all
    findings land in :attr:`findings` as CON diagnostics."""

    def __init__(self, index: ModuleIndex, contract: ConcurrencyContract) -> None:
        super().__init__(
            index,
            MemoContract(
                roots=(),
                coverage={},
                boundary_modules=contract.boundary_modules,
                purity_classes=frozenset(),
                sink_prefixes=(),
                sink_builtins=frozenset(),
            ),
        )
        self.con = contract
        self.findings: list[Diagnostic] = []
        #: worker-context stack: "thread" / "process" entries
        self._ctx: list[str] = []
        #: (class simple name, lock attr) locks currently held
        self._held: list[tuple[str, str]] = []
        self._guard_cache: dict[int, dict[str, str]] = {}
        self._hazard_cache: dict[int, str | None] = {}
        self._con_reported: set[object] = set()

    # -------------------------------------------------- plumbing
    def _ctx_kind(self) -> str | None:
        return self._ctx[-1] if self._ctx else None

    def _emit_con(
        self,
        rule: Rule,
        key: object,
        location: str,
        message: str,
        hint: str,
    ) -> None:
        if key in self._con_reported:
            return
        self._con_reported.add(key)
        self.findings.append(rule.diag(location, message, hint=hint))

    def _guards(self, cls: ClassInfo) -> dict[str, str]:
        cached = self._guard_cache.get(id(cls))
        if cached is None:
            cached = _guard_markers(cls)
            # inherited guards apply to subclasses (own declarations win)
            for base_name in cls.base_names:
                base = self.index.find_class(base_name)
                if base is not None and base is not cls:
                    for attr, guard in self._guards(base).items():
                        cached.setdefault(attr, guard)
            self._guard_cache[id(cls)] = cached
        return cached

    # -------------------------------------------------- memo context
    def _memo_key(self, func: FunctionInfo, bindings: Mapping[str, Value]) -> object:
        return (
            super()._memo_key(func, bindings),
            self._ctx_kind(),
            frozenset(self._held),
        )

    def _analyze_function(
        self, func: FunctionInfo, bindings: Mapping[str, Value]
    ) -> Value:
        pushed = 0
        if func.cls is not None:
            for lock in _holds_markers(func):
                self._held.append((func.cls.name, lock))
                pushed += 1
        try:
            return super()._analyze_function(func, bindings)
        finally:
            if pushed:
                del self._held[-pushed:]

    # -------------------------------------------------- statements
    def _exec(self, stmt: ast.stmt, frame: _Frame) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                ctx_value = self._eval(item.context_expr, frame)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ctx_value, frame)
                expr = item.context_expr
                if isinstance(expr, ast.Attribute):
                    for atom in self._eval(expr.value, frame):
                        owner = _owner_class(atom)
                        if owner is not None:
                            self._held.append((owner.name, expr.attr))
                            pushed += 1
            try:
                self._exec_block(stmt.body, frame)
            finally:
                if pushed:
                    del self._held[-pushed:]
            return
        if isinstance(stmt, ast.Global):
            # Base would emit PUR002 — the purity rules are not this
            # analyzer's business; a global rebinding *in a worker* is.
            if self._ctx:
                self._flag_global_mutation(
                    f"{frame.module.name}.{'/'.join(stmt.names)}",
                    "rebinds a module global",
                    frame,
                    stmt,
                )
            return
        super()._exec(stmt, frame)

    # -------------------------------------------------- values
    def _entity_value(self, entity: object) -> Value:
        if isinstance(entity, ModuleConstant) and _is_mutable_literal(entity.value):
            return _v(GlobalVal(entity.module.name, entity.name))
        return super()._entity_value(entity)

    def _attr_atom(
        self, atom: Atom, attr: str, frame: _Frame, node: ast.AST
    ) -> Value:
        if isinstance(atom, PoolVal):
            if attr in ("submit", "map"):
                return _v(PoolMethod(atom.kind, attr))
            return UNKNOWN
        if isinstance(atom, GlobalVal):
            if attr in MUTATOR_METHODS and self._ctx:
                self._flag_global_mutation(
                    f"{atom.module}.{atom.name}", f"calls .{attr}()", frame, node
                )
            return UNKNOWN
        if isinstance(atom, InstanceOv):
            overrides = dict(atom.overrides)
            if attr in overrides:
                return overrides[attr]
            return super()._attr_atom(Instance(atom.cls), attr, frame, node)
        result = super()._attr_atom(atom, attr, frame, node)
        if isinstance(atom, Instance) and not atom.shared:
            # Attributes of a worker-fresh object are worker-fresh too.
            result = frozenset(
                Instance(a.cls, shared=False) if isinstance(a, Instance) else a
                for a in result
            )
        return result

    # -------------------------------------------------- writes
    def _check_store_target(
        self, target: Union[ast.Attribute, ast.Subscript], frame: _Frame
    ) -> None:
        base = self._eval(target.value, frame)
        if isinstance(target, ast.Subscript):
            self._eval(target.slice, frame)
        if not self._ctx:
            return
        for atom in base:
            if isinstance(atom, GlobalVal):
                detail = (
                    f"sets .{target.attr}"
                    if isinstance(target, ast.Attribute)
                    else "assigns into a subscript"
                )
                self._flag_global_mutation(
                    f"{atom.module}.{atom.name}", detail, frame, target
                )
                continue
            owner = _owner_class(atom)
            if owner is None or (isinstance(atom, Instance) and not atom.shared):
                continue
            if isinstance(target, ast.Attribute):
                self._record_shared_write(
                    owner, target.attr, frame, target, f"sets .{target.attr}"
                )
        # ``self.attr[k] = v`` mutates the container *held by* attr.
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            for atom in self._eval(target.value.value, frame):
                owner = _owner_class(atom)
                if owner is None or (isinstance(atom, Instance) and not atom.shared):
                    continue
                self._record_shared_write(
                    owner,
                    target.value.attr,
                    frame,
                    target,
                    f"assigns into .{target.value.attr}[...]",
                )

    def _eval_call(self, call: ast.Call, frame: _Frame) -> Value:
        func_expr = call.func
        if (
            self._ctx
            and isinstance(func_expr, ast.Attribute)
            and func_expr.attr in MUTATOR_METHODS
            and isinstance(func_expr.value, ast.Attribute)
        ):
            # ``shared.attr.append(x)``: a mutation of the container the
            # attribute holds — invisible to the value lattice when the
            # attribute is untyped, so check it syntactically.
            for atom in self._eval(func_expr.value.value, frame):
                owner = _owner_class(atom)
                if owner is None or (isinstance(atom, Instance) and not atom.shared):
                    continue
                self._record_shared_write(
                    owner,
                    func_expr.value.attr,
                    frame,
                    func_expr,
                    f"calls .{func_expr.value.attr}.{func_expr.attr}()",
                )
        return super()._eval_call(call, frame)

    def _record_shared_write(
        self,
        cls: ClassInfo,
        attr: str,
        frame: _Frame,
        node: ast.AST,
        detail: str,
    ) -> None:
        if frame.func.cls is cls and frame.func.name in _INIT_METHODS:
            return
        guards = self._guards(cls)
        guard = guards.get(attr)
        if guard in EXEMPT_GUARDS:
            return
        location = self._loc(frame, node)
        if guard is not None:
            if (cls.name, guard) in self._held:
                return
            self._emit_con(
                CON005,
                ("CON005", frame.module.name, getattr(node, "lineno", 0), attr),
                location,
                f"{frame.func.qualname} {detail} on {cls.name}, but "
                f"{cls.name}.{attr} is declared `# guarded-by: {guard}` and "
                f"the write is not under `with self.{guard}:`",
                hint=f"wrap the write in `with self.{guard}:`, or mark the "
                f"enclosing method `# holds-lock: {guard}` if every caller "
                "already holds it",
            )
            return
        if any(held_cls == cls.name for held_cls, _ in self._held):
            return  # some lock of this class is held — de-facto guarded
        if self._ctx_kind() != "thread":
            # A process worker writes to its own pickled copy: the update
            # is lost, not racy — the merge-back contract owns that.
            return
        self._emit_con(
            CON001,
            ("CON001", frame.module.name, getattr(node, "lineno", 0), attr),
            location,
            f"thread worker ({frame.func.qualname}) {detail} on a shared "
            f"{cls.name} with no declared guard — concurrent workers can "
            "interleave and lose updates",
            hint=f"guard {cls.name}.{attr} with a lock and declare it "
            "`# guarded-by: <lock>`, or declare it "
            "`# guarded-by: worker-local` if each worker owns its instance",
        )

    def _flag_global_mutation(
        self, what: str, detail: str, frame: _Frame, node: ast.AST
    ) -> None:
        self._emit_con(
            CON002,
            ("CON002", frame.module.name, getattr(node, "lineno", 0), what),
            self._loc(frame, node),
            f"{self._ctx_kind()} worker ({frame.func.qualname}) {detail} "
            f"on module-level state {what}",
            hint="thread workers race on module globals and process workers "
            "mutate a throwaway copy; return the value and aggregate in "
            "the parent instead",
        )

    # -------------------------------------------------- calls
    def _call_atom(
        self,
        atom: Atom,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
        frame: _Frame,
    ) -> Value:
        if isinstance(atom, PoolMethod):
            self._fan_out(atom, call, args, kwargs, frame)
            return UNKNOWN
        if isinstance(atom, ClassVal):
            return self._construct(atom.cls, call, args, kwargs)
        if isinstance(atom, InstanceOv):
            return super()._call_atom(Instance(atom.cls), call, args, kwargs, frame)
        if isinstance(atom, ExtVal):
            qualname = atom.qualname
            tail = qualname.rpartition(".")[2]
            if tail == "ThreadPoolExecutor":
                return _v(PoolVal("thread"))
            if tail == "ProcessPoolExecutor":
                return _v(PoolVal("process"))
            if qualname in ("threading.Thread", "Thread"):
                self._spawn_thread(call, args, kwargs, frame)
                return UNKNOWN
            if qualname == "dataclasses.replace":
                return self._replace_value(args, kwargs)
            self._check_rng(qualname, frame, call)
        return super()._call_atom(atom, call, args, kwargs, frame)

    def _construct(
        self,
        cls: ClassInfo,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
    ) -> Value:
        instance = Instance(cls, shared=False)
        if not self._is_boundary(cls.module):
            init = cls.methods.get("__init__")
            if init is not None:
                self._call_function(
                    FuncVal(init, recv=_v(instance)), call, list(args), dict(kwargs)
                )
            post = cls.methods.get("__post_init__")
            if post is not None:
                self._call_function(FuncVal(post, recv=_v(instance)), call, [], {})
        return _v(instance)

    def _replace_value(
        self, args: Sequence[Value], kwargs: Mapping[str, Value]
    ) -> Value:
        if not args:
            return UNKNOWN
        out: list[Atom] = []
        for atom in args[0]:
            base_overrides: dict[str, Value] = {}
            cls: ClassInfo | None = None
            if isinstance(atom, Instance):
                cls = atom.cls
            elif isinstance(atom, InstanceOv):
                cls = atom.cls
                base_overrides = dict(atom.overrides)
            if cls is None:
                continue
            base_overrides.update(kwargs)
            out.append(
                InstanceOv(cls, tuple(sorted(base_overrides.items())))
            )
        return frozenset(out) if out else args[0]

    def _check_rng(self, qualname: str, frame: _Frame, node: ast.AST) -> None:
        if not self._ctx or qualname in self.con.rng_safe:
            return
        if not any(
            qualname == p.rstrip(".") or qualname.startswith(p)
            for p in self.con.rng_prefixes
        ):
            return
        self._emit_con(
            CON004,
            ("CON004", frame.func.qualname, qualname),
            self._loc(frame, node),
            f"{self._ctx_kind()} worker ({frame.func.qualname}) draws from "
            f"the shared module-level RNG {qualname!r} — results depend on "
            "worker scheduling (threads) or duplicated fork state (processes)",
            hint="construct a per-worker `random.Random(seed)` / "
            "`numpy.random.default_rng(seed)` and draw from that",
        )

    # -------------------------------------------------- fan-out
    def _fan_out(
        self,
        pool: PoolMethod,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
        frame: _Frame,
    ) -> None:
        if not args:
            return
        fn_value = args[0]
        if pool.method == "map":
            worker_args = [_element_of(a) for a in args[1:]]
        else:
            worker_args = list(args[1:])
        if pool.kind == "process":
            self._check_process_callable(fn_value, frame, call)
            for value in [*worker_args, *kwargs.values()]:
                self._check_pickle(value, frame, call, depth=0)
        self._run_workers(pool.kind, fn_value, worker_args, kwargs, call)

    def _spawn_thread(
        self,
        call: ast.Call,
        args: Sequence[Value],
        kwargs: Mapping[str, Value],
        frame: _Frame,
    ) -> None:
        del frame
        target = kwargs.get("target", args[0] if args else UNKNOWN)
        packed = kwargs.get("args", UNKNOWN)
        worker_args: list[Value] = []
        for atom in packed:
            if isinstance(atom, TupleVal):
                worker_args = list(atom.items)
                break
            if isinstance(atom, IterVal):
                worker_args = [atom.elem]
                break
        self._run_workers("thread", target, worker_args, {}, call)

    def _run_workers(
        self,
        kind: str,
        fn_value: Value,
        worker_args: list[Value],
        kwargs: Mapping[str, Value],
        call: ast.Call,
    ) -> None:
        passthrough = {
            name: value
            for name, value in kwargs.items()
            if name not in ("target", "args", "max_workers", "chunksize", "timeout")
        }
        self._ctx.append(kind)
        try:
            for atom in fn_value:
                if isinstance(atom, FuncVal):
                    self._call_function(atom, call, list(worker_args), passthrough)
                elif isinstance(atom, ClassVal):
                    self._construct(atom.cls, call, worker_args, passthrough)
        finally:
            self._ctx.pop()

    # -------------------------------------------------- pickling (CON003)
    def _check_process_callable(
        self, fn_value: Value, frame: _Frame, node: ast.AST
    ) -> None:
        for atom in fn_value:
            if not isinstance(atom, FuncVal):
                continue
            func = atom.func
            _, _, local = func.qualname.partition(":")
            nested = func.cls is None and "." in local
            if func.name == "<lambda>" or nested:
                self._emit_con(
                    CON003,
                    ("CON003", func.qualname, "callable"),
                    self._loc(frame, node),
                    f"process-pool worker callable {func.qualname} is a "
                    "closure/lambda — it cannot be pickled to the child",
                    hint="hoist the worker to a module-level function and "
                    "pass its inputs explicitly",
                )
            elif atom.recv is not None:
                self._check_pickle(atom.recv, frame, node, depth=0)

    def _check_pickle(
        self, value: Value, frame: _Frame, node: ast.AST, depth: int
    ) -> None:
        if depth > 4:
            return
        for atom in value:
            if isinstance(atom, (Instance, InstanceOv)):
                overrides: Mapping[str, Value] = (
                    dict(atom.overrides) if isinstance(atom, InstanceOv) else {}
                )
                hazard = self._pickle_hazard(atom.cls, frozenset())
                if hazard is not None:
                    self._flag_pickle(atom.cls.name, hazard, frame, node)
                self._walk_fields(atom.cls, overrides, frame, node, depth)
            elif isinstance(atom, ExtVal):
                if any(
                    atom.qualname.startswith(p)
                    for p in self.con.nonpicklable_ext_prefixes
                ):
                    self._flag_pickle(atom.qualname, atom.qualname, frame, node)
            elif isinstance(atom, FuncVal):
                _, _, local = atom.func.qualname.partition(":")
                if atom.func.name == "<lambda>" or (
                    atom.func.cls is None and "." in local
                ):
                    self._flag_pickle(atom.func.qualname, "a closure/lambda", frame, node)
            elif isinstance(atom, (IterVal,)):
                self._check_pickle(atom.elem, frame, node, depth + 1)
            elif isinstance(atom, TupleVal):
                for item in atom.items:
                    self._check_pickle(item, frame, node, depth + 1)
            elif isinstance(atom, DictVal):
                self._check_pickle(atom.key, frame, node, depth + 1)
                self._check_pickle(atom.val, frame, node, depth + 1)

    def _walk_fields(
        self,
        cls: ClassInfo,
        overrides: Mapping[str, Value],
        frame: _Frame,
        node: ast.AST,
        depth: int,
    ) -> None:
        if cls.name in self.con.picklable_allowlist or depth >= 4:
            return
        for field_name, annotation in cls.fields.items():
            if field_name in overrides:
                self._check_pickle(overrides[field_name], frame, node, depth + 1)
            else:
                self._check_pickle(
                    self._annotation_value(annotation, cls.module),
                    frame,
                    node,
                    depth + 1,
                )

    def _pickle_hazard(self, cls: ClassInfo, seen: frozenset[int]) -> str | None:
        """Why ``cls``'s *own* state does not survive pickling, or ``None``.

        Scans ``__init__`` (and base ``__init__`` when it is inherited or
        chained via ``super()``) for lock / thread-local / open-file
        construction.  Field-held hazards are found by the recursive
        value walk in :meth:`_check_pickle`, which honours ``replace``
        overrides."""
        if cls.name in self.con.picklable_allowlist:
            return None
        if id(cls) in seen:
            return None
        if id(cls) in self._hazard_cache:
            return self._hazard_cache[id(cls)]
        seen = seen | {id(cls)}
        hazard: str | None = None
        init = cls.methods.get("__init__")
        if init is not None:
            hazard = _init_hazard(cls, init)
        if hazard is None and (init is None or _calls_super_init(init)):
            for base_name in cls.base_names:
                base = self.index.find_class(base_name)
                if base is not None and base is not cls:
                    hazard = self._pickle_hazard(base, seen)
                    if hazard is not None:
                        break
        self._hazard_cache[id(cls)] = hazard
        return hazard

    def _flag_pickle(
        self, what: str, why: str, frame: _Frame, node: ast.AST
    ) -> None:
        self._emit_con(
            CON003,
            ("CON003", frame.func.qualname, what, why),
            self._loc(frame, node),
            f"{what} crosses the process-pool boundary but holds "
            f"non-picklable state ({why})",
            hint="ship a stripped copy (e.g. `dataclasses.replace(obj, "
            "cache=None, tracer=NULL_TRACER)`) and merge results back in "
            "the parent",
        )

    # -------------------------------------------------- root discovery
    def discover_roots(self) -> list[FunctionInfo]:
        roots: list[FunctionInfo] = []
        seen: set[int] = set()
        for qualname in self.con.extra_roots:
            func = self.index.resolve_qualname(qualname)
            if func is None:
                raise ValueError(f"cannot resolve concurrency root {qualname!r}")
            if id(func) not in seen:
                seen.add(id(func))
                roots.append(func)
        for module_name in sorted(self.index.modules):
            module = self.index.modules[module_name]
            if self._is_boundary(module):
                continue
            for func in _all_functions(module):
                if id(func) in seen:
                    continue
                if _mentions_fan_out(func.node, self.con.fan_out_markers):
                    seen.add(id(func))
                    roots.append(func)
        return roots

    # -------------------------------------------------- CON005 (syntactic)
    def check_discipline(self, module: ModuleInfo) -> None:
        """Whole-class pass: every write to a lock-guarded attribute, in
        every method, must be dominated by ``with self.<lock>:`` (or the
        method must declare ``# holds-lock:``)."""
        for cls in module.classes.values():
            guards = {
                attr: guard
                for attr, guard in self._guards(cls).items()
                if guard not in EXEMPT_GUARDS
            }
            if not guards:
                continue
            for func in [*cls.methods.values(), *cls.properties.values()]:
                if func.name in _INIT_METHODS or func.is_staticmethod:
                    continue
                self_name = _first_param_name(func.node)
                if self_name is None:
                    continue
                node = func.node
                if isinstance(node, ast.Lambda):
                    continue
                held = frozenset(_holds_markers(func))
                self._discipline_block(
                    node.body, cls, func, self_name, guards, held
                )

    def _discipline_block(
        self,
        stmts: Sequence[ast.stmt],
        cls: ClassInfo,
        func: FunctionInfo,
        self_name: str,
        guards: Mapping[str, str],
        held: frozenset[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = {
                    item.context_expr.attr
                    for item in stmt.items
                    if isinstance(item.context_expr, ast.Attribute)
                    and isinstance(item.context_expr.value, ast.Name)
                    and item.context_expr.value.id == self_name
                }
                self._discipline_block(
                    stmt.body, cls, func, self_name, guards, held | acquired
                )
            elif isinstance(stmt, ast.If):
                self._discipline_leaf(stmt.test, cls, func, self_name, guards, held)
                self._discipline_block(stmt.body, cls, func, self_name, guards, held)
                self._discipline_block(stmt.orelse, cls, func, self_name, guards, held)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._discipline_leaf(stmt.iter, cls, func, self_name, guards, held)
                self._discipline_block(stmt.body, cls, func, self_name, guards, held)
                self._discipline_block(stmt.orelse, cls, func, self_name, guards, held)
            elif isinstance(stmt, ast.While):
                self._discipline_leaf(stmt.test, cls, func, self_name, guards, held)
                self._discipline_block(stmt.body, cls, func, self_name, guards, held)
                self._discipline_block(stmt.orelse, cls, func, self_name, guards, held)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._discipline_block(block, cls, func, self_name, guards, held)
                for handler in stmt.handlers:
                    self._discipline_block(
                        handler.body, cls, func, self_name, guards, held
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested closure may run after the lock is released;
                # analyze it as if nothing were held.
                self._discipline_block(
                    stmt.body, cls, func, self_name, guards, frozenset()
                )
            else:
                self._discipline_leaf(stmt, cls, func, self_name, guards, held)

    def _discipline_leaf(
        self,
        node: ast.AST,
        cls: ClassInfo,
        func: FunctionInfo,
        self_name: str,
        guards: Mapping[str, str],
        held: frozenset[str],
    ) -> None:
        def is_self_attr(expr: ast.expr) -> str | None:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self_name
            ):
                return expr.attr
            return None

        def check(attr: str | None, sub: ast.AST, detail: str) -> None:
            if attr is None or attr not in guards:
                return
            guard = guards[attr]
            if guard in held:
                return
            self._emit_con(
                CON005,
                ("CON005", cls.module.name, getattr(sub, "lineno", 0), attr),
                f"{cls.module.name}:{getattr(sub, 'lineno', func.lineno)}",
                f"{func.qualname} {detail} but {cls.name}.{attr} is declared "
                f"`# guarded-by: {guard}` and `self.{guard}` is not held here",
                hint=f"wrap the write in `with self.{guard}:`, or mark "
                f"{func.name} `# holds-lock: {guard}` if callers always "
                "hold it",
            )

        for sub in ast.walk(node):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Delete):
                targets = list(sub.targets)
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in MUTATOR_METHODS:
                    attr = is_self_attr(sub.func.value)
                    check(attr, sub, f"mutates .{attr} via .{sub.func.attr}()")
                continue
            for target in targets:
                attr = is_self_attr(target)
                if attr is not None:
                    check(attr, target, f"writes .{attr}")
                elif isinstance(target, ast.Subscript):
                    inner = is_self_attr(target.value)
                    check(inner, target, f"assigns into .{inner}[...]")


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _owner_class(atom: Atom) -> ClassInfo | None:
    if isinstance(atom, Instance):
        return atom.cls
    if isinstance(atom, InstanceOv):
        return atom.cls
    return None


def _is_mutable_literal(expr: ast.expr | None) -> bool:
    if expr is None:
        return False
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = ""
        if isinstance(expr.func, ast.Name):
            name = expr.func.id
        elif isinstance(expr.func, ast.Attribute):
            name = expr.func.attr
        return name in _MUTABLE_FACTORIES
    return False


def _mentions_fan_out(
    node: ast.AST, markers: frozenset[str]
) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in markers:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in markers:
            return True
    return False


def _all_functions(module: ModuleInfo) -> list[FunctionInfo]:
    out = list(module.functions.values())
    for cls in module.classes.values():
        out.extend(cls.methods.values())
        out.extend(cls.properties.values())
    return out


def _init_hazard(cls: ClassInfo, init: FunctionInfo) -> str | None:
    for sub in ast.walk(init.node):
        if not isinstance(sub, ast.Call):
            continue
        name = ""
        if isinstance(sub.func, ast.Name):
            name = sub.func.id
        elif isinstance(sub.func, ast.Attribute):
            name = sub.func.attr
        if name in _HAZARD_CALLS:
            what = "an open file" if name == "open" else f"a threading.{name}"
            return f"{cls.name}.__init__ creates {what}"
    return None


def _calls_super_init(init: FunctionInfo) -> bool:
    for sub in ast.walk(init.node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "__init__"
        ):
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "super"
        ):
            return True
    return False


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def analyze_concurrency_tree(
    index: ModuleIndex, contract: ConcurrencyContract
) -> list[Diagnostic]:
    """Run the race analysis over an indexed tree.

    Returns CON001–CON005 diagnostics ordered by rule id then location.
    Raises :class:`ValueError` when a declared extra root cannot be
    resolved — a silent no-op analysis would report a clean bill it
    never earned."""
    analyzer = _ConAnalyzer(index, contract)
    for func in analyzer.discover_roots():
        analyzer.analyze_root(func)
    for module_name in sorted(index.modules):
        module = index.modules[module_name]
        if not analyzer._is_boundary(module):
            analyzer.check_discipline(module)
    diagnostics = list(analyzer.findings)
    diagnostics.sort(key=lambda d: (d.rule_id, d.location, d.message))
    return diagnostics


def concurrency_contract() -> ConcurrencyContract:
    """The repro tree's own fan-out contract.

    The declared roots are the two shipping fan-out fronts; anything
    else that mentions an executor is discovered by the marker scan.
    ``NullTracer`` is allowlisted for pickling: it deliberately skips
    ``Tracer.__init__`` and holds no state."""
    return ConcurrencyContract(
        extra_roots=(
            "repro.sim.simulator:Simulator.evaluate_many",
            "repro.core.autohet:autohet_multi_seed",
        ),
        boundary_modules=("repro.analysis",),
        picklable_allowlist=frozenset({"NullTracer"}),
    )


def analyze_concurrency(root: Path | None = None) -> list[Diagnostic]:
    """Prove (or refute) the worker fan-out paths race-free.

    Indexes the installed ``repro`` package (or an explicit source tree
    rooted at ``root``, laid out like the package) and runs
    :func:`analyze_concurrency_tree` under :func:`concurrency_contract`.
    An empty result is the theorem: every attribute a worker can write
    is guarded, no worker touches module globals or shared RNG streams,
    and nothing non-picklable crosses a process boundary."""
    base = root if root is not None else Path(__file__).resolve().parent.parent
    index = ModuleIndex.from_package(Path(base), "repro")
    return analyze_concurrency_tree(index, concurrency_contract())
