"""Tests for the scalar/vectorized kernel-parity analysis (PAR rules).

The real proof is :class:`TestRealTree` (the shipped tree satisfies its
own coverage contract) plus :class:`TestTamper` — the acceptance
criterion that the contract is *load-bearing*: deleting any single
kernel column, coverage row, or replicated constant from the **real
sources** must fire a PAR diagnostic.  Tampering happens on in-memory
copies of the source text; nothing on disk is touched.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.callgraph import ModuleIndex
from repro.analysis.kernel_parity import (
    ParityContract,
    analyze_kernel_parity,
    analyze_kernel_parity_tree,
    kernel_parity_contract,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
FIXTURE_TREE = Path(__file__).parent / "fixtures" / "divergent_kernel_tree"


def rule_ids(diags):
    return sorted({d.rule_id for d in diags})


def tampered_sources(replacements):
    """The real tree's sources with per-module string replacements applied.

    ``replacements`` maps dotted module name -> [(old, new), ...]; every
    ``old`` must occur, so a refactor that moves the tampered code makes
    the test fail loudly instead of silently testing nothing.
    """
    out = {}
    for path in sorted(REPO_SRC.rglob("*.py")):
        rel = path.relative_to(REPO_SRC)
        parts = list(rel.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][:-3]
        name = ".".join(["repro", *parts]) if parts else "repro"
        text = path.read_text()
        for old, new in replacements.get(name, []):
            assert old in text, f"tamper anchor missing from {name}: {old!r}"
            text = text.replace(old, new)
        out[name] = text
    return out


def analyze_tampered(replacements):
    index = ModuleIndex.from_sources(tampered_sources(replacements))
    return analyze_kernel_parity_tree(index, kernel_parity_contract())


class TestRealTree:
    def test_contract_resolves(self):
        contract = kernel_parity_contract()
        assert "repro.sim.simulator:Simulator.evaluate" in contract.roots
        assert "LayerSpec" in contract.coverage
        assert "MappingBatch" in contract.derived

    def test_real_tree_satisfies_parity_contract(self):
        # The theorem: every scalar read is carried by a live kernel
        # column, no column is dead, every replicated constant matches.
        assert analyze_kernel_parity() == []

    def test_untampered_sources_are_clean_through_from_sources(self):
        # The tamper harness itself must not manufacture findings.
        assert analyze_tampered({}) == []


class TestTamper:
    def test_deleting_networkarrays_field_fires_par001(self):
        diags = analyze_tampered(
            {"repro.sim.kernels": [("    in_channels: np.ndarray\n", "")]}
        )
        par1 = [d for d in diags if d.rule_id == "PAR001"]
        assert par1, rule_ids(diags)
        assert any("NetworkArrays.in_channels" in d.message for d in par1)
        # The finding points at the scalar read site left uncovered.
        assert any("repro.arch.mapping" in d.location for d in par1)

    def test_renaming_networkarrays_field_fires_par002(self):
        diags = analyze_tampered(
            {
                "repro.sim.kernels": [
                    ("    weight_counts: np.ndarray", "    weight_tallies: np.ndarray")
                ]
            }
        )
        par2 = [d for d in diags if d.rule_id == "PAR002"]
        # Both halves report: the declared target dangles and the renamed
        # column is dead.
        assert any("weight_counts" in d.message or "weight_counts" in d.location for d in par2)
        assert any("weight_tallies" in d.location for d in par2)

    def test_unvectorized_read_in_energy_fires_par001(self):
        # The acceptance tamper: add a scalar read of a LayerSpec field
        # the kernels do not carry.
        diags = analyze_tampered(
            {
                "repro.sim.energy": [
                    (
                        "mapping.layer.mvm_ops",
                        "mapping.layer.mvm_ops + len(mapping.layer.name)",
                    )
                ]
            }
        )
        par1 = [d for d in diags if d.rule_id == "PAR001"]
        assert any(
            "LayerSpec.name" in d.message and "repro.sim.energy" in d.location
            for d in par1
        )

    def test_rewording_kernel_capacity_message_fires_par003(self):
        diags = analyze_tampered(
            {
                "repro.sim.kernels": [
                    (
                        "strategy needs {summary.occupied_tiles} tiles; one ",
                        "strategy wants {summary.occupied_tiles} tiles; one ",
                    )
                ]
            }
        )
        par3 = [d for d in diags if d.rule_id == "PAR003"]
        assert any("no longer replicates" in d.message for d in par3)

    def test_deleting_shape_table_row_fires_par002_and_par003(self):
        diags = analyze_tampered(
            {"repro.sim.kernels": [('    "buffer",\n', "")]}
        )
        ids = rule_ids(diags)
        # The registry shrank: its index unpack now disagrees (PAR003)
        # and the orphaned _F_BUF row is dead weight (PAR002).
        assert "PAR003" in ids
        assert any(
            d.rule_id == "PAR003" and "SHAPE_TABLE_FLOAT_ROWS" in d.message
            for d in diags
        )

    def test_renaming_layermapping_property_fires_par001_and_par003(self):
        diags = analyze_tampered(
            {
                "repro.arch.mapping": [
                    ("def partial_sum_adds", "def partial_sum_additions")
                ]
            }
        )
        ids = rule_ids(diags)
        # The scalar cost path reads a member that no longer resolves
        # (PAR001) and MappingBatch.partial_sum_adds lost its scalar
        # source of truth (PAR003).
        assert "PAR001" in ids
        assert any(
            d.rule_id == "PAR003"
            and d.location == "MappingBatch.partial_sum_adds"
            for d in diags
        )


class TestFixtureTree:
    def test_divergent_tree_fires_one_of_each(self):
        diags = analyze_kernel_parity(FIXTURE_TREE)
        assert rule_ids(diags) == ["PAR001", "PAR002", "PAR003"]
        by_rule = {r: [d for d in diags if d.rule_id == r] for r in rule_ids(diags)}
        assert any("LayerSpec.flavor" in d.message for d in by_rule["PAR001"])
        assert any(
            d.location == "NetworkArrays.scratch_buffer" for d in by_rule["PAR002"]
        )
        assert any("index unpack" in d.message for d in by_rule["PAR003"])
        assert any("no longer replicates" in d.message for d in by_rule["PAR003"])


class TestContractErrors:
    def test_unresolvable_root_raises(self):
        index = ModuleIndex.from_sources({"repro.sim.kernels": "x = 1\n"})
        contract = ParityContract(
            roots=("repro.sim.simulator:Simulator.evaluate",),
            kernel_module="repro.sim.kernels",
            coverage={},
            derived={},
        )
        with pytest.raises(ValueError, match="cannot resolve"):
            analyze_kernel_parity_tree(index, contract)

    def test_missing_kernel_module_raises(self):
        index = ModuleIndex.from_sources(
            {"repro.sim.simulator": "def evaluate():\n    return 0\n"}
        )
        contract = ParityContract(
            roots=("repro.sim.simulator:evaluate",),
            kernel_module="repro.sim.kernels",
            coverage={},
            derived={},
        )
        with pytest.raises(ValueError, match="kernel module"):
            analyze_kernel_parity_tree(index, contract)

    def test_missing_registry_reports_par003(self):
        index = ModuleIndex.from_sources(
            {
                "repro.sim.simulator": "def evaluate():\n    return 0\n",
                "repro.sim.kernels": "class ShapeTable:\n    pass\n",
            }
        )
        contract = ParityContract(
            roots=("repro.sim.simulator:evaluate",),
            kernel_module="repro.sim.kernels",
            coverage={},
            derived={},
            registries={"ShapeTable": (("SHAPE_TABLE_FLOAT_ROWS", "_F_"),)},
        )
        diags = analyze_kernel_parity_tree(index, contract)
        assert rule_ids(diags) == ["PAR003"]
        assert "row registry" in diags[0].message
