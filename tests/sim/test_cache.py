"""The evaluation cache: LRU mechanics, keying, and — the load-bearing
contract — bit-for-bit parity between the cached fast path and the cold
reference simulator (docs/performance.md)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import DEFAULT_CANDIDATES, HardwareConfig
from repro.models import lenet, tiny_cnn
from repro.sim.cache import (
    CacheStats,
    EvaluationCache,
    config_fingerprint,
    network_fingerprint,
)
from repro.sim.simulator import CapacityError, Simulator


def reference_simulator(config=None, **kwargs):
    """The cold path: no result cache, no memoised costs."""
    if config is not None:
        return Simulator(config, cache=None, memoize_costs=False, **kwargs)
    return Simulator(cache=None, memoize_costs=False, **kwargs)


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
def test_cache_get_put_and_counters():
    cache = EvaluationCache(max_size=4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    stats = cache.stats()
    assert stats.hits == 1
    assert stats.misses == 1
    assert stats.lookups == 2
    assert stats.hit_rate == 0.5
    assert stats.size == 1
    assert stats.evictions == 0


def test_cache_evicts_least_recently_used():
    cache = EvaluationCache(max_size=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a" -> "b" is now LRU
    cache.put("c", 3)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.stats().evictions == 1


def test_cache_put_refreshes_existing_key():
    cache = EvaluationCache(max_size=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert -> no eviction
    assert len(cache) == 2
    assert cache.get("a") == 10
    assert cache.stats().evictions == 0


def test_cache_clear_resets_everything():
    cache = EvaluationCache(max_size=4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats() == CacheStats(max_size=4)


def test_cache_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        EvaluationCache(max_size=0)


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
def test_fingerprints_are_content_based():
    assert config_fingerprint(HardwareConfig()) == config_fingerprint(
        HardwareConfig()
    )
    assert config_fingerprint(HardwareConfig()) != config_fingerprint(
        HardwareConfig(pes_per_tile=8)
    )
    assert network_fingerprint(lenet()) == network_fingerprint(lenet())
    assert network_fingerprint(lenet()) != network_fingerprint(tiny_cnn())


def test_key_separates_flags_and_strategies(lenet_net):
    config = HardwareConfig()
    s1 = tuple(DEFAULT_CANDIDATES[0] for _ in lenet_net.layers)
    s2 = tuple(DEFAULT_CANDIDATES[1] for _ in lenet_net.layers)

    def key(strategy, **flags):
        defaults = dict(tile_shared=True, detailed=True, enforce_capacity=True)
        defaults.update(flags)
        return EvaluationCache.make_key(config, lenet_net, strategy, **defaults)

    base = key(s1)
    assert base == key(s1)
    assert base != key(s2)
    assert base != key(s1, tile_shared=False)
    assert base != key(s1, detailed=False)
    assert base != key(s1, enforce_capacity=False)


def test_simulator_counts_hits_across_repeat_evaluations(lenet_net):
    sim = Simulator()
    strategy = tuple(DEFAULT_CANDIDATES[2] for _ in lenet_net.layers)
    first = sim.evaluate(lenet_net, strategy)
    second = sim.evaluate(lenet_net, strategy)
    assert first is second  # the cached object itself comes back
    stats = sim.cache_stats()
    assert stats.hits == 1
    assert stats.misses == 1


# ----------------------------------------------------------------------
# Parity: cached fast path == cold reference, bit for bit
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(data=st.data(), tile_shared=st.booleans())
def test_cached_equals_uncached_on_random_strategies(
    data, tile_shared, lenet_net, simulator
):
    picks = data.draw(
        st.lists(
            st.sampled_from(DEFAULT_CANDIDATES),
            min_size=lenet_net.num_layers,
            max_size=lenet_net.num_layers,
        )
    )
    strategy = tuple(picks)
    cold = reference_simulator().evaluate(
        lenet_net, strategy, tile_shared=tile_shared
    )
    warm = simulator.evaluate(lenet_net, strategy, tile_shared=tile_shared)
    assert cold == warm  # frozen dataclass: every field, bit for bit


@pytest.mark.parametrize("tile_shared", [True, False])
def test_parity_on_tile_sharing_edge_cases(tile_shared):
    from repro.models import CIFAR10, LayerSpec, Network

    shape = DEFAULT_CANDIDATES[0]  # 32x32
    # Single tile: one layer, one crossbar -> a lone partially-filled tile.
    single = Network.build("single", CIFAR10, [LayerSpec.fc(3, 8)])
    # All-full group: each layer maps to exactly logical_xbars_per_tile
    # crossbars, so no tile has empties and Algorithm 1 merges nothing.
    full = Network.build(
        "full", CIFAR10, [LayerSpec.fc(3, 128), LayerSpec.fc(128, 32)]
    )
    for net in (single, full):
        strategy = tuple(shape for _ in net.layers)
        cold = reference_simulator().evaluate(
            net, strategy, tile_shared=tile_shared
        )
        warm = Simulator().evaluate(net, strategy, tile_shared=tile_shared)
        assert cold == warm


def test_parity_with_capacity_one_tiles(lenet_net):
    # pes_per_tile=1 -> one crossbar slot per tile: the degenerate group
    # where every occupied tile is full and sharing can release nothing.
    cfg = HardwareConfig(pes_per_tile=1)
    strategy = tuple(DEFAULT_CANDIDATES[1] for _ in lenet_net.layers)
    for tile_shared in (True, False):
        cold = reference_simulator(cfg).evaluate(
            lenet_net, strategy, tile_shared=tile_shared
        )
        warm = Simulator(cfg).evaluate(
            lenet_net, strategy, tile_shared=tile_shared
        )
        assert cold == warm


# ----------------------------------------------------------------------
# Infeasible strategies are cached too
# ----------------------------------------------------------------------
def test_infeasible_outcome_is_cached(lenet_net):
    cfg = HardwareConfig(tiles_per_bank=1)
    sim = Simulator(cfg)
    strategy = tuple(DEFAULT_CANDIDATES[0] for _ in lenet_net.layers)
    with pytest.raises(CapacityError) as first:
        sim.evaluate(lenet_net, strategy)
    with pytest.raises(CapacityError) as second:
        sim.evaluate(lenet_net, strategy)
    assert str(first.value) == str(second.value)
    stats = sim.cache_stats()
    assert stats.hits == 1 and stats.misses == 1
    assert sim.try_evaluate(lenet_net, strategy) is None


# ----------------------------------------------------------------------
# evaluate_many
# ----------------------------------------------------------------------
def strategies_for(network, count=8):
    shapes = DEFAULT_CANDIDATES
    return [
        tuple(shapes[(i + j) % len(shapes)] for j in range(network.num_layers))
        for i in range(count)
    ]


def test_evaluate_many_matches_serial_evaluate(lenet_net):
    batch = strategies_for(lenet_net)
    serial = [reference_simulator().evaluate(lenet_net, s, detailed=False)
              for s in batch]
    assert Simulator().evaluate_many(lenet_net, batch) == serial
    assert (
        Simulator().evaluate_many(lenet_net, batch, max_workers=4) == serial
    )


def test_evaluate_many_skips_infeasible(lenet_net):
    cfg = HardwareConfig(tiles_per_bank=1)
    batch = strategies_for(lenet_net, count=4)
    results = Simulator(cfg).evaluate_many(lenet_net, batch)
    assert results == [None] * len(batch)
    with pytest.raises(CapacityError):
        Simulator(cfg).evaluate_many(lenet_net, batch, skip_infeasible=False)


def test_evaluate_many_rejects_unknown_executor(lenet_net):
    with pytest.raises(ValueError):
        Simulator().evaluate_many(
            lenet_net, strategies_for(lenet_net, 2), executor="fork"
        )
