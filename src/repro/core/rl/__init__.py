"""Reinforcement-learning crossbar-configuration search (§3.2, DDPG)."""

from .ddpg import DDPGAgent, DDPGConfig
from .environment import (
    STATE_DIM,
    CrossbarSearchEnv,
    EpisodeResult,
    reward_energy,
    reward_rue,
    reward_utilization,
)
from .networks import MLP, Adam
from .noise import OrnsteinUhlenbeckNoise, TruncatedNormalNoise
from .replay import ExperiencePool, Transition
from .td3 import TD3Agent, TD3Config

__all__ = [
    "DDPGAgent",
    "DDPGConfig",
    "STATE_DIM",
    "CrossbarSearchEnv",
    "EpisodeResult",
    "reward_energy",
    "reward_rue",
    "reward_utilization",
    "MLP",
    "Adam",
    "OrnsteinUhlenbeckNoise",
    "TruncatedNormalNoise",
    "ExperiencePool",
    "Transition",
    "TD3Agent",
    "TD3Config",
]
